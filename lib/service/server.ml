module Graph_io = Datagraph.Graph_io

module Admission = struct
  (* A counting semaphore with a bounded wait queue and a draining
     state, multiplexed on one condition variable: waiters wake on
     [release] (a slot may have opened) and on [drain] (give up and
     report [`Draining]); the drainer waits for both counts to reach
     zero.  Broadcast everywhere — the wakeup sets are small (bounded by
     [queue_depth] + drainers) and correctness beats precision here. *)
  type gate = {
    max_inflight : int;
    queue_depth : int;
    m : Mutex.t;
    c : Condition.t;
    mutable running_ : int;
    mutable waiting_ : int;
    mutable draining : bool;
  }

  let make ~max_inflight ~queue_depth =
    if max_inflight < 1 then
      invalid_arg "Service.Server.Admission.make: max_inflight must be >= 1";
    if queue_depth < 0 then
      invalid_arg "Service.Server.Admission.make: queue_depth must be >= 0";
    {
      max_inflight;
      queue_depth;
      m = Mutex.create ();
      c = Condition.create ();
      running_ = 0;
      waiting_ = 0;
      draining = false;
    }

  let locked g f =
    Mutex.lock g.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock g.m) f

  let admit g =
    locked g (fun () ->
        if g.draining then `Draining
        else if g.running_ < g.max_inflight then begin
          g.running_ <- g.running_ + 1;
          `Admitted
        end
        else if g.waiting_ >= g.queue_depth then `Overloaded
        else begin
          g.waiting_ <- g.waiting_ + 1;
          let rec wait () =
            Condition.wait g.c g.m;
            if g.draining then begin
              g.waiting_ <- g.waiting_ - 1;
              Condition.broadcast g.c;
              `Draining
            end
            else if g.running_ < g.max_inflight then begin
              g.waiting_ <- g.waiting_ - 1;
              g.running_ <- g.running_ + 1;
              `Admitted
            end
            else wait ()
          in
          wait ()
        end)

  let release g =
    locked g (fun () ->
        g.running_ <- g.running_ - 1;
        Condition.broadcast g.c)

  let drain g =
    locked g (fun () ->
        g.draining <- true;
        Condition.broadcast g.c;
        while g.running_ > 0 || g.waiting_ > 0 do
          Condition.wait g.c g.m
        done)

  let running g = locked g (fun () -> g.running_)
  let waiting g = locked g (fun () -> g.waiting_)
end

type config = {
  max_inflight : int;
  queue_depth : int;
  pool_queue_depth : int;
  default_fuel : int option;
  default_deadline_s : float option;
  cache : Cache.config;
  store_dir : string option;
  fsync : Store.Log.fsync_policy;
  auto_compact_bytes : int;
  shard : (int * int) option;
  export_limit : int;
  slow_ms : float option;
  slow_log : string -> unit;
  idle_timeout_s : float option;
}

let default_config =
  {
    max_inflight = 4;
    queue_depth = 16;
    pool_queue_depth = 32;
    default_fuel = None;
    default_deadline_s = None;
    cache = Cache.default_config;
    store_dir = None;
    fsync = Store.Log.Every 64;
    auto_compact_bytes = 0;
    shard = None;
    export_limit = 64;
    slow_ms = None;
    slow_log = (fun line -> Printf.eprintf "%s\n%!" line);
    idle_timeout_s = None;
  }

type t = {
  config : config;
  cache_ : Cache.t;
  addr : Wire.address;
  listen_fd : Unix.file_descr;
  gate : Admission.gate;
  started_s : float;
  n_requests : int Atomic.t;
  n_decides : int Atomic.t;
  n_batches : int Atomic.t;
  n_deltas : int Atomic.t;
  n_pings : int Atomic.t;
  n_stats : int Atomic.t;
  n_sleeps : int Atomic.t;
  n_overloaded : int Atomic.t;
  n_errors : int Atomic.t;
  n_metrics : int Atomic.t;
  req_ids : int Atomic.t;
  stop : bool Atomic.t;
}

let c_requests = Obs.Counter.make "service.requests"
let c_overloaded = Obs.Counter.make "service.overloaded"

(* Per-op request latency (admission wait included): the server-side
   view of what clients experience, which the offline bench can only
   approximate from outside the socket. *)
let h_decide = Obs.Histogram.make "op.decide"
let h_batch = Obs.Histogram.make "op.batch"
let h_delta = Obs.Histogram.make "op.delta"

let bump a c =
  ignore (Atomic.fetch_and_add a 1);
  Obs.Counter.incr c

let incr a = ignore (Atomic.fetch_and_add a 1)

let sockaddr_of = Wire.sockaddr_of

let create ?(config = default_config) addr =
  (* A client that disconnects mid-response must not kill the server
     with SIGPIPE; writes to its socket fail with EPIPE instead, which
     the handler treats as end-of-connection. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* Spans must tell concurrent handler threads apart — the server is
     thread-per-connection on one domain, so the domain id alone is not
     an execution lane.  [Obs] takes the hook rather than a [threads]
     dependency. *)
  Obs.set_thread_id_fn (fun () -> Thread.id (Thread.self ()));
  (* Work-op bodies execute on the shared domain pool ([pool_exec]); its
     submission backlog bound is process-global, like the pool itself. *)
  Par.Pool.set_submission_bound config.pool_queue_depth;
  let listen_fd =
    match addr with
    | Wire.Unix_sock path ->
        if Sys.file_exists path then (try Unix.unlink path with _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        fd
    | Wire.Tcp _ ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (sockaddr_of addr);
        fd
  in
  Unix.listen listen_fd 64;
  let durable =
    Option.map
      (fun dir ->
        Tier.open_ ~fsync:config.fsync
          ~auto_compact_bytes:config.auto_compact_bytes dir)
      config.store_dir
  in
  {
    config;
    cache_ = Cache.create ~config:config.cache ?durable ();
    addr;
    listen_fd;
    gate =
      Admission.make ~max_inflight:config.max_inflight
        ~queue_depth:config.queue_depth;
    started_s = Unix.gettimeofday ();
    n_requests = Atomic.make 0;
    n_decides = Atomic.make 0;
    n_batches = Atomic.make 0;
    n_deltas = Atomic.make 0;
    n_pings = Atomic.make 0;
    n_stats = Atomic.make 0;
    n_sleeps = Atomic.make 0;
    n_overloaded = Atomic.make 0;
    n_errors = Atomic.make 0;
    n_metrics = Atomic.make 0;
    req_ids = Atomic.make 0;
    stop = Atomic.make false;
  }

let cache t = t.cache_
let config t = t.config
let address t = t.addr

let stats t =
  let snap =
    [
      ("uptime_seconds", int_of_float (Unix.gettimeofday () -. t.started_s));
      ("started_at", int_of_float t.started_s);
      ("requests", Atomic.get t.n_requests);
      ("decides", Atomic.get t.n_decides);
      ("batches", Atomic.get t.n_batches);
      ("deltas", Atomic.get t.n_deltas);
      ("pings", Atomic.get t.n_pings);
      ("stats_ops", Atomic.get t.n_stats);
      ("sleeps", Atomic.get t.n_sleeps);
      ("overloaded", Atomic.get t.n_overloaded);
      ("errors", Atomic.get t.n_errors);
      ("metrics_ops", Atomic.get t.n_metrics);
      ("inflight", Admission.running t.gate);
      ("queued", Admission.waiting t.gate);
    ]
    @ (match t.config.shard with
      | None -> []
      | Some (i, n) -> [ ("shard_index", i); ("shard_count", n) ])
    @ List.map (fun (k, v) -> ("cache_" ^ k, v)) (Cache.stats t.cache_)
    @ List.map (fun (k, v) -> ("pool_" ^ k, v)) (Par.Pool.stats ())
    @
    if not (Fault.Failpoint.armed ()) then []
    else
      List.concat_map
        (fun (site, calls, fires) ->
          let flat = String.map (fun c -> if c = '.' then '_' else c) site in
          [ ("fault_" ^ flat ^ "_calls", calls); ("fault_" ^ flat ^ "_fires", fires) ])
        (Fault.Failpoint.stats ())
  in
  List.sort compare snap

(* ------------------------------------------------------------------ *)
(* Responses.  Field values are pre-rendered JSON (Wire combinators).
   Every response line is sealed (Wire.seal) so corruption between here
   and the requester is detectable; progress frames are not. *)

let respond oc fields =
  output_string oc (Wire.seal fields);
  output_char oc '\n';
  flush oc

let ok op rest = ("op", Wire.json_string op) :: ("status", Wire.json_string "ok") :: rest

let error_fields op msg =
  [
    ("op", Wire.json_string op);
    ("status", Wire.json_string "error");
    ("error", Wire.json_string msg);
  ]

let overloaded_fields t op why =
  bump t.n_overloaded c_overloaded;
  [
    ("op", Wire.json_string op);
    ("status", Wire.json_string "overloaded");
    ( "detail",
      Wire.json_string
        (match why with
        (* [`Pool_queue] — the admitted body could not even be queued on
           the domain pool — answers like thread-queue saturation: to the
           client both are "the server is full, back off and retry". *)
        | `Overloaded | `Pool_queue -> "queue_full"
        | `Draining -> "draining") );
  ]

(* Request fuel/deadline override the server defaults. *)
let effective_budget t ~fuel ~timeout_s =
  ( (match fuel with Some _ -> fuel | None -> t.config.default_fuel),
    match timeout_s with Some _ -> timeout_s | None -> t.config.default_deadline_s
  )

let admit_timed t =
  (* Failpoint: shed this admission as if the gate were full — the
     chaos harness's way of exercising the overload path on demand. *)
  if Fault.Failpoint.armed () && Fault.Failpoint.fire "server.admit.overload" then
    (`Overloaded, 0.)
  else
    let t0 = Unix.gettimeofday () in
    let r =
      Obs.Span.with_ "service.queue_wait" (fun () -> Admission.admit t.gate)
    in
    (r, Unix.gettimeofday () -. t0)

let service_fields ~queue_wait_s ~wall_s =
  ( "service",
    Wire.json_obj
      [
        ("queue_wait_s", Printf.sprintf "%.6f" queue_wait_s);
        ("wall_s", Printf.sprintf "%.6f" wall_s);
      ] )

(* One instance through the cache; shared by [decide] and [batch].
   Returns pre-rendered response fields for the per-instance object,
   plus the instance digest for the slow-request log. *)
let decide_one t ~lang ~k ~fuel ~timeout_s text =
  match Graph_io.instance_of_string text with
  | Error msg -> Error ("instance: " ^ msg)
  | Ok (g, s) -> (
      let fuel, deadline_s = effective_budget t ~fuel ~timeout_s in
      match Cache.decide_keyed t.cache_ ?fuel ?deadline_s ?k ~lang g s with
      | Error msg -> Error msg
      | Ok (outcome, origin, key) ->
          Ok
            ( [
                ( "cache",
                  Wire.json_string
                    (match origin with `Hit -> "hit" | `Miss -> "miss") );
                ("digest", Wire.json_string key);
                ("result", Wire.verdict_to_string g ~lang outcome);
              ],
              key ))

(* Execute the body (or bodies — one per batch item) of an admitted
   work op on the shared domain pool.  Handler threads keep doing socket
   I/O and admission; the compute runs on worker domains, so concurrent
   requests and batch items fill idle domains instead of timeslicing one.
   The request's trace context is captured here (on the handler thread)
   and re-established inside each task, so spans recorded by a worker
   domain still carry this request's trace id.  [`Pool_queue] means the
   pool's bounded submission queue was full — answered as overload.  At
   pool size 1 there are no workers and the bodies run inline right
   here, the byte-for-byte pre-pool execution path. *)
let pool_exec bodies =
  if Fault.Failpoint.armed () && Fault.Failpoint.fire "server.pool.reject" then
    Error `Pool_queue
  else if Par.Pool.size () <= 1 then Ok (Array.map (fun f -> f ()) bodies)
  else
    let trace = Obs.Ctx.current () in
    match
      Par.Pool.submit (Array.map (fun f () -> Obs.Ctx.with_trace trace f) bodies)
    with
    | Ok r -> Ok r
    | Error `Queue_full -> Error `Pool_queue

(* ---------------------------------------------------------------- *)
(* Request-scoped sinks.  Both filter on the request's trace id when one
   is live — work bodies execute on pool domains, so the recording lane
   no longer identifies the request, but the trace context travels into
   the submitted tasks ([pool_exec]) — and fall back to the recording
   lane (this handler thread on this domain) when no trace was minted.
   Concurrent requests thus never leak into each other's stream or phase
   breakdown, unless clients deliberately share a trace id.  Both
   swallow their own failures: sink callbacks run inside span dispatch,
   and a client that vanished mid-stream must not take the decide down
   with it. *)

let span_filter () =
  let trace = Obs.Ctx.current () in
  let dom = (Domain.self () :> int) in
  let tid = Obs.thread_id () in
  fun (s : Obs.span) ->
    match trace with
    | Some _ -> s.Obs.trace = trace
    | None -> s.Obs.dom = dom && s.Obs.tid = tid

(* Streaming progress: one newline-JSON frame per span enter/exit on
   this lane, counter deltas attached at exit.  Frames carry a
   ["progress"] field, which is how the client tells them from the
   final response line. *)
let progress_sink oc =
  let mine = span_filter () in
  let t0 = Unix.gettimeofday () in
  let dead = ref false in
  let last = ref (Obs.Counter.all ()) in
  let emit fields =
    if not !dead then (
      try
        output_string oc (Wire.json_obj fields);
        output_char oc '\n';
        flush oc
      with _ -> dead := true)
  in
  let base event (s : Obs.span) =
    [
      ("progress", Wire.json_string event);
      ("phase", Wire.json_string s.Obs.name);
      ("t_s", Printf.sprintf "%.6f" (s.Obs.start_s -. t0));
      ("depth", string_of_int s.Obs.depth);
    ]
  in
  Obs.Sink.make_full
    ~enter:(fun s -> if mine s then emit (base "enter" s))
    (fun s ->
      if mine s then begin
        let now_c = Obs.Counter.all () in
        let deltas =
          List.filter_map
            (fun (name, v) ->
              let prev =
                match List.assoc_opt name !last with Some p -> p | None -> 0
              in
              if v > prev then Some (name, string_of_int (v - prev)) else None)
            now_c
        in
        last := now_c;
        emit
          (base "exit" s
          @ [ ("dur_s", Printf.sprintf "%.6f" (s.Obs.stop_s -. s.Obs.start_s)) ]
          @ if deltas = [] then [] else [ ("counters", Wire.json_obj deltas) ])
      end)

(* Phase totals for the slow-request log: span name -> summed wall time
   on this lane. *)
let phase_collector () =
  let mine = span_filter () in
  (* [acc] is written from whichever lane records a matching span —
     handler thread or pool worker — so it takes a lock. *)
  let m = Mutex.create () in
  let acc : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let sink =
    Obs.Sink.make (fun (s : Obs.span) ->
        if mine s then begin
          Mutex.lock m;
          let prev =
            Option.value ~default:0. (Hashtbl.find_opt acc s.Obs.name)
          in
          Hashtbl.replace acc s.Obs.name
            (prev +. (s.Obs.stop_s -. s.Obs.start_s));
          Mutex.unlock m
        end)
  in
  ( sink,
    fun () ->
      Mutex.lock m;
      let l = Hashtbl.fold (fun k v l -> (k, v) :: l) acc [] in
      Mutex.unlock m;
      List.sort compare l )

let note_slow t ~op ~digest ~queue_wait_s ~wall_s ~phases =
  match t.config.slow_ms with
  | Some ms when wall_s *. 1000. >= ms ->
      t.config.slow_log
        (Wire.json_obj
           [
             ("slow_request", Wire.json_string op);
             ("threshold_ms", Printf.sprintf "%g" ms);
             ( "trace_id",
               match Obs.Ctx.current () with
               | Some id -> Wire.json_string id
               | None -> "null" );
             ( "digest",
               match digest with Some d -> Wire.json_string d | None -> "null"
             );
             ("wall_s", Printf.sprintf "%.6f" wall_s);
             ( "phases",
               Wire.json_obj
                 (( ("queue_wait_s", Printf.sprintf "%.6f" queue_wait_s)
                  :: ("work_s", Printf.sprintf "%.6f" (wall_s -. queue_wait_s))
                  :: List.map
                       (fun (name, total_s) ->
                         (name, Printf.sprintf "%.6f" total_s))
                       (phases ()) )) );
           ])
  | _ -> ()

(* The request-scoped sinks a work op needs, given its envelope: the
   streaming sink when asked for, the phase collector when a slow-log
   threshold is armed.  [with_request_sinks] installs them, runs the
   work, and removes them again on every exit path — a sink must never
   outlive its request. *)
let with_request_sinks t oc ~(env : Wire.envelope) f =
  if not (Obs.enabled ()) then f (fun () -> [])
  else begin
    let sinks = if env.Wire.stream then [ progress_sink oc ] else [] in
    let sinks, phases =
      match t.config.slow_ms with
      | None -> (sinks, fun () -> [])
      | Some _ ->
          let sink, phases = phase_collector () in
          (sink :: sinks, phases)
    in
    List.iter Obs.add_sink sinks;
    Fun.protect
      ~finally:(fun () -> List.iter Obs.remove_sink sinks)
      (fun () -> f phases)
  end

let handle_decide t oc ~env ~lang ~k ~fuel ~timeout_s text =
  incr t.n_decides;
  let t0 = Unix.gettimeofday () in
  match admit_timed t with
  | (`Overloaded | `Draining) as why, _ ->
      respond oc (overloaded_fields t "decide" why)
  | `Admitted, queue_wait_s ->
      Fun.protect
        ~finally:(fun () -> Admission.release t.gate)
        (fun () ->
          with_request_sinks t oc ~env (fun phases ->
              match
                pool_exec
                  [| (fun () -> decide_one t ~lang ~k ~fuel ~timeout_s text) |]
              with
              | Error `Pool_queue ->
                  respond oc (overloaded_fields t "decide" `Pool_queue)
              | Ok [| Error msg |] ->
                  incr t.n_errors;
                  respond oc (error_fields "decide" msg)
              | Ok [| Ok (fields, digest) |] ->
                  let wall_s = Unix.gettimeofday () -. t0 in
                  Obs.Histogram.record_s h_decide wall_s;
                  note_slow t ~op:"decide" ~digest:(Some digest) ~queue_wait_s
                    ~wall_s ~phases;
                  respond oc
                    (ok "decide"
                       (fields @ [ service_fields ~queue_wait_s ~wall_s ]))
              | Ok _ -> assert false (* one body in, one result out *)))

let handle_batch t oc ~env ~lang ~k ~fuel ~timeout_s texts =
  incr t.n_batches;
  let t0 = Unix.gettimeofday () in
  match admit_timed t with
  | (`Overloaded | `Draining) as why, _ ->
      respond oc (overloaded_fields t "batch" why)
  | `Admitted, queue_wait_s ->
      Fun.protect
        ~finally:(fun () -> Admission.release t.gate)
        (fun () ->
          with_request_sinks t oc ~env (fun phases ->
              (* One pool task per instance: batch items fill idle
                 domains (batch-level parallelism is the easy published
                 win — the kernels inside each decide decline to
                 sub-split while on a worker).  A failed instance yields
                 a per-item error object instead of failing the batch;
                 results come back in input order, so the response is
                 byte-identical to the sequential form. *)
              let bodies =
                Array.of_list
                  (List.map
                     (fun text () ->
                       match decide_one t ~lang ~k ~fuel ~timeout_s text with
                       | Ok (fields, _digest) -> Wire.json_obj fields
                       | Error msg ->
                           incr t.n_errors;
                           Wire.json_obj [ ("error", Wire.json_string msg) ])
                     texts)
              in
              match pool_exec bodies with
              | Error `Pool_queue ->
                  respond oc (overloaded_fields t "batch" `Pool_queue)
              | Ok items ->
                  let wall_s = Unix.gettimeofday () -. t0 in
                  Obs.Histogram.record_s h_batch wall_s;
                  note_slow t ~op:"batch" ~digest:None ~queue_wait_s ~wall_s
                    ~phases;
                  respond oc
                    (ok "batch"
                       [
                         ("results", Wire.json_list (Array.to_list items));
                         service_fields ~queue_wait_s ~wall_s;
                       ])))

let handle_delta t oc ~env ~lang ~k ~fuel ~timeout_s ~digest edit =
  incr t.n_deltas;
  let t0 = Unix.gettimeofday () in
  match admit_timed t with
  | (`Overloaded | `Draining) as why, _ ->
      respond oc (overloaded_fields t "delta" why)
  | `Admitted, queue_wait_s ->
      Fun.protect
        ~finally:(fun () -> Admission.release t.gate)
        (fun () ->
          with_request_sinks t oc ~env @@ fun phases ->
          let body () =
            match Cache.find_instance t.cache_ digest with
            | None ->
                Error
                  (Printf.sprintf
                     "unknown instance digest %s (cold-decide it first; it may \
                      also have been evicted)"
                     digest)
            | Some inst -> (
                match
                  Wire.resolve_edit (Engine.Instance.graph inst) edit
                with
                | Error _ as e -> e
                | Ok edit ->
                    let fuel, deadline_s = effective_budget t ~fuel ~timeout_s in
                    Cache.apply_edit t.cache_ ?fuel ?deadline_s ?k ~lang
                      ~key:digest edit)
          in
          match pool_exec [| body |] with
          | Error `Pool_queue ->
              respond oc (overloaded_fields t "delta" `Pool_queue)
          | Ok [| Error msg |] ->
              incr t.n_errors;
              respond oc (error_fields "delta" msg)
          | Ok [| Ok { Cache.outcome; inst; key; repaired } |] ->
              let wall_s = Unix.gettimeofday () -. t0 in
              Obs.Histogram.record_s h_delta wall_s;
              note_slow t ~op:"delta" ~digest:(Some key) ~queue_wait_s ~wall_s
                ~phases;
              respond oc
                (ok "delta"
                   [
                     ("repair", Wire.json_string (if repaired then "hit" else "miss"));
                     ("digest", Wire.json_string key);
                     ( "result",
                       Wire.verdict_to_string (Engine.Instance.graph inst) ~lang
                         outcome );
                     service_fields ~queue_wait_s ~wall_s;
                   ])
          | Ok _ -> assert false (* one body in, one result out *))

let handle_sleep t oc ~ms =
  incr t.n_sleeps;
  match admit_timed t with
  | (`Overloaded | `Draining) as why, _ ->
      respond oc (overloaded_fields t "sleep" why)
  | `Admitted, queue_wait_s ->
      Fun.protect
        ~finally:(fun () -> Admission.release t.gate)
        (fun () ->
          Thread.delay (float_of_int ms /. 1000.);
          respond oc
            (ok "sleep"
               [
                 ("slept_ms", string_of_int ms);
                 service_fields ~queue_wait_s ~wall_s:(float_of_int ms /. 1000.);
               ]))

(* Tiered-storage control ops.  Cheap relative to decides (compaction
   rewrites the live set, import certificate-checks each entry), so they
   bypass admission like the other control ops. *)
let handle_compact t oc =
  match Cache.durable t.cache_ with
  | None ->
      incr t.n_errors;
      respond oc (error_fields "compact" "no durable store configured")
  | Some d ->
      Tier.compact d;
      respond oc
        (ok "compact"
           [
             ( "store",
               Wire.json_obj
                 (List.map
                    (fun (k, v) -> (k, string_of_int v))
                    (Tier.stats d)) );
           ])

let handle_export t oc ~limit =
  let limit = Option.value limit ~default:t.config.export_limit in
  let entries = Cache.export_hot t.cache_ ~limit in
  respond oc
    (ok "export"
       [
         ( "entries",
           Wire.json_list
             (List.map
                (fun (digest, raw) ->
                  Wire.json_obj
                    [
                      ("digest", Wire.json_string digest);
                      ("payload", Wire.json_string (Tier.to_hex raw));
                    ])
                entries) );
       ])

let handle_import t oc entries =
  let imported = ref 0 and rejected = ref 0 in
  List.iter
    (fun (digest, hex) ->
      match
        Result.bind (Tier.of_hex hex) (fun raw ->
            Cache.import t.cache_ ~key:digest raw)
      with
      | Ok () -> Stdlib.incr imported
      | Error _ -> Stdlib.incr rejected)
    entries;
  respond oc
    (ok "import"
       [
         ("imported", string_of_int !imported);
         ("rejected", string_of_int !rejected);
       ])

(* Wake the acceptor with a throwaway self-connection: closing a
   listening socket does not reliably interrupt an [accept] blocked in
   another thread, so the stop flag is set first and the acceptor
   observes it on the next (self-induced) wakeup. *)
let initiate_stop t =
  if not (Atomic.exchange t.stop true) then
    try
      let fd =
        Unix.socket
          (match t.addr with
          | Wire.Unix_sock _ -> Unix.PF_UNIX
          | Wire.Tcp _ -> Unix.PF_INET)
          Unix.SOCK_STREAM 0
      in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with _ -> ())
        (fun () ->
          let addr =
            match t.addr with
            | Wire.Tcp (_, port) ->
                (* Connect to loopback even when bound to a wildcard. *)
                Unix.ADDR_INET (Unix.inet_addr_loopback, port)
            | a -> sockaddr_of a
          in
          Unix.connect fd addr)
    with _ -> ()

let shutdown t =
  Admission.drain t.gate;
  initiate_stop t

let handle_metrics t oc =
  incr t.n_metrics;
  let snap = Metrics.capture () in
  let gauges =
    [
      ("uptime_seconds", Unix.gettimeofday () -. t.started_s);
      ("inflight", float_of_int (Admission.running t.gate));
      ("queued", float_of_int (Admission.waiting t.gate));
    ]
  in
  respond oc
    (ok "metrics"
       [
         ("metrics", Wire.json_string (Metrics.render ~gauges snap));
         ("data", Metrics.to_json snap);
         ("version", Wire.json_string Metrics.build_string);
       ])

let dispatch_request t oc ~env req =
  match req with
  | Wire.Ping ->
      incr t.n_pings;
      respond oc (ok "ping" [])
  | Wire.Stats ->
      incr t.n_stats;
      respond oc
        (ok "stats"
           [
             ( "stats",
               Wire.json_obj
                 (List.map (fun (k, v) -> (k, string_of_int v)) (stats t)) );
             ("version", Wire.json_string Metrics.build_string);
           ])
  | Wire.Shutdown ->
      (* Drain first — every admitted and queued work op completes and is
         answered — then answer the requester, then stop the acceptor. *)
      Admission.drain t.gate;
      respond oc (ok "shutdown" [ ("drained", "true") ]);
      initiate_stop t
  | Wire.Sleep { ms } -> handle_sleep t oc ~ms
  | Wire.Decide { lang; k; fuel; timeout_s; instance } ->
      handle_decide t oc ~env ~lang ~k ~fuel ~timeout_s instance
  | Wire.Batch { lang; k; fuel; timeout_s; instances } ->
      handle_batch t oc ~env ~lang ~k ~fuel ~timeout_s instances
  | Wire.Delta { lang; k; fuel; timeout_s; digest; edit } ->
      handle_delta t oc ~env ~lang ~k ~fuel ~timeout_s ~digest edit
  | Wire.Compact -> handle_compact t oc
  | Wire.Export { limit } -> handle_export t oc ~limit
  | Wire.Import { entries } -> handle_import t oc entries
  | Wire.Metrics -> handle_metrics t oc

let handle_request t oc line =
  bump t.n_requests c_requests;
  (* Sealed requests (load generator, chaos harness) are verified before
     parsing: a corrupted sealed line must fail typed rather than
     execute as a subtly different request.  Unsealed requests pass. *)
  if Wire.crc_status line = `Sealed_bad then begin
    incr t.n_errors;
    respond oc (error_fields "unknown" "request failed integrity check")
  end
  else
  match Json.parse line with
  | Error msg ->
      incr t.n_errors;
      respond oc (error_fields "unknown" msg)
  | Ok j -> (
      match Wire.request_of_json j with
      | Error msg ->
          incr t.n_errors;
          respond oc (error_fields "unknown" msg)
      | Ok req ->
          let env = Wire.envelope_of_json j in
          (* The root span is tagged with the request's trace id; when
             the plane is live but the client sent none, the server
             mints one so the slow log and trace events still correlate
             within this process. *)
          let trace_id =
            match env.Wire.trace_id with
            | Some _ as id -> id
            | None ->
                if Obs.enabled () || t.config.slow_ms <> None then
                  Some
                    (Printf.sprintf "req-%d-%d" (Unix.getpid ())
                       (Atomic.fetch_and_add t.req_ids 1))
                else None
          in
          let work () =
            Obs.Span.with_ "service.request" (fun () ->
                dispatch_request t oc ~env req)
          in
          if trace_id = None then work ()
          else Obs.Ctx.with_trace trace_id work)

let handle_conn t fd =
  (* Idle timeout: a kernel receive timeout, so a connection whose next
     request never comes surfaces as [Sys_blocked_io] from [input_line]
     (the buffered channel's rendering of EAGAIN) and the handler
     thread exits instead of parking forever. *)
  (match t.config.idle_timeout_s with
  | Some s when s > 0. -> Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
  | _ -> ());
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _ | Sys_blocked_io) -> ()
    | line when String.trim line = "" -> loop ()
    | line ->
        (* The root "service.request" span lives inside [handle_request],
           under the request's trace context. *)
        (match handle_request t oc line with
        | () -> ()
        | exception (Sys_error _ | Sys_blocked_io | Unix.Unix_error _) ->
            (* Client went away mid-response; drop the connection. *)
            raise Exit
        | exception e ->
            incr t.n_errors;
            respond oc
              (error_fields "unknown" ("internal: " ^ Printexc.to_string e)));
        loop ()
  in
  (try loop () with Exit | Sys_error _ | Sys_blocked_io | Unix.Unix_error _ -> ());
  (* [close_out] flushes and closes the shared fd; everything after is
     best-effort. *)
  try close_out oc with _ -> ()

let run t =
  let rec loop () =
    if not (Atomic.get t.stop) then
      match Unix.accept t.listen_fd with
      | fd, _ ->
          if Atomic.get t.stop then (try Unix.close fd with _ -> ())
          else ignore (Thread.create (handle_conn t) fd);
          loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
          if Atomic.get t.stop then () else loop ()
  in
  loop ();
  (try Unix.close t.listen_fd with _ -> ());
  (* Sync and close the durable tier only after the drain: every
     admitted decide has written through by now. *)
  (try Cache.close t.cache_ with _ -> ());
  match t.addr with
  | Wire.Unix_sock path -> ( try Unix.unlink path with _ -> ())
  | Wire.Tcp _ -> ()
