module Data_graph = Datagraph.Data_graph
module Outcome = Engine.Outcome

(* Minimal JSON emission — the output grammar is flat enough that a
   string escaper and a few combinators beat a dependency.  (Moved from
   the CLI, which now emits through this module; the byte format is
   load-bearing, see the interface.) *)
let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  Json.escape_into b s;
  Buffer.add_char b '"';
  Buffer.contents b

let json_obj fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
  ^ "}"

let json_list xs = "[" ^ String.concat "," xs ^ "]"

(* The verdict block: everything that must be byte-identical at any
   domain-pool size and across cache hits (stats blocks may legitimately
   vary — timings, node counts under parallel cancellation).  [check
   --json], [batch] and the service [decide] op all render through this
   one function. *)
let verdict_fields g ~lang (o : Outcome.t) =
  let certificate =
    match Outcome.certificate o with
    | None -> "null"
    | Some c ->
        json_obj
          [
            ("lang", json_string (Outcome.certificate_lang c));
            ("query", json_string (Outcome.certificate_to_string c));
          ]
  in
  let name u = json_string (Data_graph.name g u) in
  let counterexample =
    match o.verdict with
    | Outcome.Not_definable (Outcome.Missing_pairs pairs) ->
        json_obj
          [
            ( "missing_pairs",
              json_list
                (List.map (fun (u, v) -> json_list [ name u; name v ]) pairs) );
          ]
    | Outcome.Not_definable (Outcome.Violating_hom { hom; tuple }) ->
        json_obj
          [
            ("hom", json_list (Array.to_list (Array.map name hom)));
            ("tuple", json_list (List.map name tuple));
          ]
    | Outcome.Definable _ | Outcome.Unknown _ -> "null"
  in
  let reason =
    match o.verdict with
    | Outcome.Unknown r -> json_string (Outcome.reason_to_string r)
    | Outcome.Definable _ | Outcome.Not_definable _ -> "null"
  in
  [
    ("lang", json_string lang);
    ("verdict", json_string (Outcome.verdict_name o.verdict));
    ("reason", reason);
    ("certificate", certificate);
    ("counterexample", counterexample);
  ]

let verdict_to_string g ~lang o = json_obj (verdict_fields g ~lang o)

(* ------------------------------------------------------------------ *)

type address = Unix_sock of string | Tcp of string * int

let address_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

(* ------------------------------------------------------------------ *)

type request =
  | Ping
  | Stats
  | Shutdown
  | Sleep of { ms : int }
  | Decide of {
      lang : string;
      k : int option;
      fuel : int option;
      timeout_s : float option;
      instance : string;
    }
  | Batch of {
      lang : string;
      k : int option;
      fuel : int option;
      timeout_s : float option;
      instances : string list;
    }

let opt f = function None -> [] | Some v -> [ f v ]

let budget_fields ~k ~fuel ~timeout_s =
  opt (fun k -> ("k", string_of_int k)) k
  @ opt (fun f -> ("fuel", string_of_int f)) fuel
  @ opt (fun s -> ("timeout_s", Printf.sprintf "%.6f" s)) timeout_s

let request_to_string = function
  | Ping -> json_obj [ ("op", json_string "ping") ]
  | Stats -> json_obj [ ("op", json_string "stats") ]
  | Shutdown -> json_obj [ ("op", json_string "shutdown") ]
  | Sleep { ms } ->
      json_obj [ ("op", json_string "sleep"); ("ms", string_of_int ms) ]
  | Decide { lang; k; fuel; timeout_s; instance } ->
      json_obj
        (( ("op", json_string "decide")
         :: ("lang", json_string lang)
         :: budget_fields ~k ~fuel ~timeout_s )
        @ [ ("instance", json_string instance) ])
  | Batch { lang; k; fuel; timeout_s; instances } ->
      json_obj
        (( ("op", json_string "batch")
         :: ("lang", json_string lang)
         :: budget_fields ~k ~fuel ~timeout_s )
        @ [ ("instances", json_list (List.map json_string instances)) ])

let ( let* ) r f = Result.bind r f

let required what conv j field =
  match Option.bind (Json.member field j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed %S (%s)" field what)

let optional what conv j field =
  match Json.member field j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match conv v with
      | Some v -> Ok (Some v)
      | None -> Error (Printf.sprintf "ill-typed %S (%s)" field what))

let budget_of j =
  let* k = optional "integer" Json.to_int j "k" in
  let* fuel = optional "integer" Json.to_int j "fuel" in
  let* timeout_s = optional "number" Json.to_float j "timeout_s" in
  Ok (k, fuel, timeout_s)

let request_of_json j =
  let* op = required "string" Json.to_str j "op" in
  match op with
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | "sleep" ->
      let* ms = required "integer" Json.to_int j "ms" in
      if ms < 0 then Error "\"ms\" must be non-negative"
      else Ok (Sleep { ms })
  | "decide" ->
      let* lang = required "string" Json.to_str j "lang" in
      let* k, fuel, timeout_s = budget_of j in
      let* instance = required "string" Json.to_str j "instance" in
      Ok (Decide { lang; k; fuel; timeout_s; instance })
  | "batch" ->
      let* lang = required "string" Json.to_str j "lang" in
      let* k, fuel, timeout_s = budget_of j in
      let* items = required "array" Json.to_list j "instances" in
      let* instances =
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            match Json.to_str item with
            | Some s -> Ok (s :: acc)
            | None -> Error "\"instances\" must be an array of strings")
          items (Ok [])
      in
      Ok (Batch { lang; k; fuel; timeout_s; instances })
  | other -> Error (Printf.sprintf "unknown op %S" other)

let request_of_string line =
  let* j = Json.parse line in
  request_of_json j
