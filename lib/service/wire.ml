module Data_graph = Datagraph.Data_graph
module Outcome = Engine.Outcome

(* Minimal JSON emission — the output grammar is flat enough that a
   string escaper and a few combinators beat a dependency.  (Moved from
   the CLI, which now emits through this module; the byte format is
   load-bearing, see the interface.) *)
let json_string s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  Json.escape_into b s;
  Buffer.add_char b '"';
  Buffer.contents b

let json_obj fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields)
  ^ "}"

let json_list xs = "[" ^ String.concat "," xs ^ "]"

(* Response integrity: a sealed response line ends with a ["crc"] field
   holding the CRC-32 (8 hex digits) of the object rendered without it.
   The seal rides inside the JSON object, so a router can relay a shard
   line verbatim and the seal stays valid end to end; a flipped byte
   anywhere in the payload fails the check at the first hop that looks.
   Progress frames are not sealed — they are advisory and discarded on
   any parse doubt. *)
let seal fields =
  let body = json_obj fields in
  if fields = [] then body
  else
    Printf.sprintf "%s,\"crc\":\"%08x\"}"
      (String.sub body 0 (String.length body - 1))
      (Store.Crc32.digest_string body)

(* Seal an already-rendered object line.  The load generator seals its
   request lines with this so a byte corrupted in transit (chaos proxy)
   is detected server-side instead of executing as a subtly different
   request. *)
let seal_line line =
  let n = String.length line in
  if n < 3 || line.[0] <> '{' || line.[n - 1] <> '}' then line
  else
    Printf.sprintf "%s,\"crc\":\"%08x\"}"
      (String.sub line 0 (n - 1))
      (Store.Crc32.digest_string line)

let is_hex8 s =
  String.length s = 8
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let crc_status line =
  let n = String.length line in
  if n < 18 || String.sub line (n - 18) 8 <> ",\"crc\":\""
     || line.[n - 2] <> '"' || line.[n - 1] <> '}'
  then `Unsealed
  else
    let hex = String.sub line (n - 10) 8 in
    if not (is_hex8 hex) then `Sealed_bad
    else
      let crc = int_of_string ("0x" ^ hex) in
      let body = String.sub line 0 (n - 18) ^ "}" in
      if Store.Crc32.digest_string body = crc then `Sealed_ok else `Sealed_bad

let crc_ok line = crc_status line <> `Sealed_bad

(* The verdict block: everything that must be byte-identical at any
   domain-pool size and across cache hits (stats blocks may legitimately
   vary — timings, node counts under parallel cancellation).  [check
   --json], [batch] and the service [decide] op all render through this
   one function. *)
let verdict_fields g ~lang (o : Outcome.t) =
  let certificate =
    match Outcome.certificate o with
    | None -> "null"
    | Some c ->
        json_obj
          [
            ("lang", json_string (Outcome.certificate_lang c));
            ("query", json_string (Outcome.certificate_to_string c));
          ]
  in
  let name u = json_string (Data_graph.name g u) in
  let counterexample =
    match o.verdict with
    | Outcome.Not_definable (Outcome.Missing_pairs pairs) ->
        json_obj
          [
            ( "missing_pairs",
              json_list
                (List.map (fun (u, v) -> json_list [ name u; name v ]) pairs) );
          ]
    | Outcome.Not_definable (Outcome.Violating_hom { hom; tuple }) ->
        json_obj
          [
            ("hom", json_list (Array.to_list (Array.map name hom)));
            ("tuple", json_list (List.map name tuple));
          ]
    | Outcome.Definable _ | Outcome.Unknown _ -> "null"
  in
  let reason =
    match o.verdict with
    | Outcome.Unknown r -> json_string (Outcome.reason_to_string r)
    | Outcome.Definable _ | Outcome.Not_definable _ -> "null"
  in
  [
    ("lang", json_string lang);
    ("verdict", json_string (Outcome.verdict_name o.verdict));
    ("reason", reason);
    ("certificate", certificate);
    ("counterexample", counterexample);
  ]

let verdict_to_string g ~lang o = json_obj (verdict_fields g ~lang o)

(* ------------------------------------------------------------------ *)

type address = Unix_sock of string | Tcp of string * int

let address_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let sockaddr_of = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let inet =
        match Unix.inet_addr_of_string host with
        | addr -> addr
        | exception Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
                failwith ("cannot resolve host " ^ host)
            | h -> h.Unix.h_addr_list.(0))
      in
      Unix.ADDR_INET (inet, port)

(* ------------------------------------------------------------------ *)

(* Edits name nodes the way instance files do — by node name — and are
   resolved against a concrete graph only at the point of use (the
   server resolves against the cached instance, [watch] against the
   evolving local one). *)
type edit =
  | Add_edge of string * string * string
  | Remove_edge of string * string * string
  | Add_node of string * int
  | Set_relation of string list list

let edit_to_json_fields = function
  | Add_edge (u, a, v) ->
      [
        ("edit", json_string "add_edge");
        ("u", json_string u);
        ("label", json_string a);
        ("v", json_string v);
      ]
  | Remove_edge (u, a, v) ->
      [
        ("edit", json_string "remove_edge");
        ("u", json_string u);
        ("label", json_string a);
        ("v", json_string v);
      ]
  | Add_node (name, value) ->
      [
        ("edit", json_string "add_node");
        ("name", json_string name);
        ("value", string_of_int value);
      ]
  | Set_relation tuples ->
      [
        ("edit", json_string "set_relation");
        ( "tuples",
          json_list
            (List.map (fun tup -> json_list (List.map json_string tup)) tuples)
        );
      ]

let edit_to_json_string e = json_obj (edit_to_json_fields e)

let resolve_edit g e =
  let node what s =
    match Datagraph.Data_graph.node_of_name g s with
    | v -> Ok v
    | exception Not_found -> Error (Printf.sprintf "%s: unknown node %S" what s)
  in
  match e with
  | Add_edge (u, a, v) ->
      Result.bind (node "add_edge" u) (fun u ->
          Result.map (fun v -> Engine.Delta.Add_edge (u, a, v)) (node "add_edge" v))
  | Remove_edge (u, a, v) ->
      Result.bind (node "remove_edge" u) (fun u ->
          Result.map
            (fun v -> Engine.Delta.Remove_edge (u, a, v))
            (node "remove_edge" v))
  | Add_node (name, value) ->
      Ok (Engine.Delta.Add_node (name, Datagraph.Data_value.of_int value))
  | Set_relation tuples ->
      let rec tuples_to_ids acc = function
        | [] -> Ok (List.rev acc)
        | tup :: rest -> (
            let rec tup_to_ids acc = function
              | [] -> Ok (List.rev acc)
              | s :: ss -> (
                  match node "set_relation" s with
                  | Ok v -> tup_to_ids (v :: acc) ss
                  | Error _ as e -> e)
            in
            match tup_to_ids [] tup with
            | Ok ids -> tuples_to_ids (ids :: acc) rest
            | Error _ as e -> e)
      in
      Result.map
        (fun tups -> Engine.Delta.Set_relation tups)
        (tuples_to_ids [] tuples)

type request =
  | Ping
  | Stats
  | Shutdown
  | Sleep of { ms : int }
  | Decide of {
      lang : string;
      k : int option;
      fuel : int option;
      timeout_s : float option;
      instance : string;
    }
  | Batch of {
      lang : string;
      k : int option;
      fuel : int option;
      timeout_s : float option;
      instances : string list;
    }
  | Delta of {
      lang : string;
      k : int option;
      fuel : int option;
      timeout_s : float option;
      digest : string;
      edit : edit;
    }
  | Compact
  | Export of { limit : int option }
  | Import of { entries : (string * string) list }
  | Metrics

(* The observability envelope rides on any request object, orthogonal
   to the op: [trace_id]/[parent_span] propagate a distributed-trace
   context across socket hops, [stream] asks for interim progress
   frames.  It is parsed separately from the op so the seven
   [request]-constructing call sites don't change shape — and so the
   router's verbatim byte relay forwards the context for free. *)
type envelope = {
  trace_id : string option;
  parent_span : string option;
  stream : bool;
}

let empty_envelope = { trace_id = None; parent_span = None; stream = false }

let opt f = function None -> [] | Some v -> [ f v ]

let budget_fields ~k ~fuel ~timeout_s =
  opt (fun k -> ("k", string_of_int k)) k
  @ opt (fun f -> ("fuel", string_of_int f)) fuel
  @ opt (fun s -> ("timeout_s", Printf.sprintf "%.6f" s)) timeout_s

let request_fields = function
  | Ping -> [ ("op", json_string "ping") ]
  | Stats -> [ ("op", json_string "stats") ]
  | Shutdown -> [ ("op", json_string "shutdown") ]
  | Sleep { ms } -> [ ("op", json_string "sleep"); ("ms", string_of_int ms) ]
  | Decide { lang; k; fuel; timeout_s; instance } ->
      ( ("op", json_string "decide")
      :: ("lang", json_string lang)
      :: budget_fields ~k ~fuel ~timeout_s )
      @ [ ("instance", json_string instance) ]
  | Batch { lang; k; fuel; timeout_s; instances } ->
      ( ("op", json_string "batch")
      :: ("lang", json_string lang)
      :: budget_fields ~k ~fuel ~timeout_s )
      @ [ ("instances", json_list (List.map json_string instances)) ]
  | Delta { lang; k; fuel; timeout_s; digest; edit } ->
      ( ("op", json_string "delta")
      :: ("lang", json_string lang)
      :: budget_fields ~k ~fuel ~timeout_s )
      @ [ ("digest", json_string digest); ("edit", edit_to_json_string edit) ]
  | Compact -> [ ("op", json_string "compact") ]
  | Export { limit } ->
      ("op", json_string "export")
      :: opt (fun n -> ("limit", string_of_int n)) limit
  | Import { entries } ->
      [
        ("op", json_string "import");
        ( "entries",
          json_list
            (List.map
               (fun (digest, payload) ->
                 json_obj
                   [
                     ("digest", json_string digest);
                     ("payload", json_string payload);
                   ])
               entries) );
      ]
  | Metrics -> [ ("op", json_string "metrics") ]

let envelope_fields env =
  opt (fun id -> ("trace_id", json_string id)) env.trace_id
  @ opt (fun sp -> ("parent_span", json_string sp)) env.parent_span
  @ (if env.stream then [ ("stream", "true") ] else [])

let request_line ?(envelope = empty_envelope) r =
  json_obj (request_fields r @ envelope_fields envelope)

let request_to_string r = request_line r

let ( let* ) r f = Result.bind r f

let required what conv j field =
  match Option.bind (Json.member field j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or ill-typed %S (%s)" field what)

let optional what conv j field =
  match Json.member field j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match conv v with
      | Some v -> Ok (Some v)
      | None -> Error (Printf.sprintf "ill-typed %S (%s)" field what))

let budget_of j =
  let* k = optional "integer" Json.to_int j "k" in
  let* fuel = optional "integer" Json.to_int j "fuel" in
  let* timeout_s = optional "number" Json.to_float j "timeout_s" in
  Ok (k, fuel, timeout_s)

let edit_of_json j =
  let* kind = required "string" Json.to_str j "edit" in
  match kind with
  | "add_edge" | "remove_edge" ->
      let* u = required "string" Json.to_str j "u" in
      let* a = required "string" Json.to_str j "label" in
      let* v = required "string" Json.to_str j "v" in
      Ok (if kind = "add_edge" then Add_edge (u, a, v) else Remove_edge (u, a, v))
  | "add_node" ->
      let* name = required "string" Json.to_str j "name" in
      let* value = required "integer" Json.to_int j "value" in
      Ok (Add_node (name, value))
  | "set_relation" ->
      let* items = required "array" Json.to_list j "tuples" in
      let* tuples =
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            match
              Option.map (List.map Json.to_str) (Json.to_list item)
            with
            | Some names when List.for_all Option.is_some names ->
                Ok (List.map Option.get names :: acc)
            | _ -> Error "\"tuples\" must be an array of arrays of node names")
          items (Ok [])
      in
      Ok (Set_relation tuples)
  | other -> Error (Printf.sprintf "unknown edit kind %S" other)

let edit_of_string line =
  let* j = Json.parse line in
  edit_of_json j

let request_of_json j =
  let* op = required "string" Json.to_str j "op" in
  match op with
  | "ping" -> Ok Ping
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | "sleep" ->
      let* ms = required "integer" Json.to_int j "ms" in
      if ms < 0 then Error "\"ms\" must be non-negative"
      else Ok (Sleep { ms })
  | "decide" ->
      let* lang = required "string" Json.to_str j "lang" in
      let* k, fuel, timeout_s = budget_of j in
      let* instance = required "string" Json.to_str j "instance" in
      Ok (Decide { lang; k; fuel; timeout_s; instance })
  | "batch" ->
      let* lang = required "string" Json.to_str j "lang" in
      let* k, fuel, timeout_s = budget_of j in
      let* items = required "array" Json.to_list j "instances" in
      let* instances =
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            match Json.to_str item with
            | Some s -> Ok (s :: acc)
            | None -> Error "\"instances\" must be an array of strings")
          items (Ok [])
      in
      Ok (Batch { lang; k; fuel; timeout_s; instances })
  | "delta" ->
      let* lang = required "string" Json.to_str j "lang" in
      let* k, fuel, timeout_s = budget_of j in
      let* digest = required "string" Json.to_str j "digest" in
      let* ej =
        match Json.member "edit" j with
        | Some (Json.Obj _ as ej) -> Ok ej
        | Some _ | None -> Error "missing or ill-typed \"edit\" (object)"
      in
      let* edit = edit_of_json ej in
      Ok (Delta { lang; k; fuel; timeout_s; digest; edit })
  | "compact" -> Ok Compact
  | "export" ->
      let* limit = optional "integer" Json.to_int j "limit" in
      (match limit with
      | Some n when n < 1 -> Error "\"limit\" must be positive"
      | _ -> Ok (Export { limit }))
  | "import" ->
      let* items = required "array" Json.to_list j "entries" in
      let* entries =
        List.fold_right
          (fun item acc ->
            let* acc = acc in
            let* digest = required "string" Json.to_str item "digest" in
            let* payload = required "string" Json.to_str item "payload" in
            Ok ((digest, payload) :: acc))
          items (Ok [])
      in
      Ok (Import { entries })
  | "metrics" -> Ok Metrics
  | other -> Error (Printf.sprintf "unknown op %S" other)

let request_of_string line =
  let* j = Json.parse line in
  request_of_json j

(* Envelope extraction is total: a malformed envelope field degrades to
   its absence rather than failing the request — tracing must never be
   able to break a decide. *)
let envelope_of_json j =
  let str field = Option.bind (Json.member field j) Json.to_str in
  let stream =
    match Option.bind (Json.member "stream" j) Json.to_bool with
    | Some b -> b
    | None -> false
  in
  { trace_id = str "trace_id"; parent_span = str "parent_span"; stream }
