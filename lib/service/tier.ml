module Graph_io = Datagraph.Graph_io
module Instance = Engine.Instance
module Outcome = Engine.Outcome

type entry = {
  lang : string;
  k : int;
  inst : Instance.t;
  outcome : Outcome.t;
}

(* The marshaled shape.  The instance travels as Graph_io text: an
   [Instance.t] owns memo tables (closures, caches) that must not cross
   a Marshal boundary, and rebuilding from text re-validates it. *)
type payload = {
  p_lang : string;
  p_k : int;
  p_instance : string;
  p_outcome : Outcome.t;
}

(* Version header: bump when [payload] (or anything reachable from
   [Outcome.t]) changes shape, so stale stores from an older build are
   dropped at recovery instead of mis-decoded. *)
let magic = "defv1\n"

let encode e =
  let text =
    Graph_io.instance_to_string (Instance.graph e.inst) (Instance.relation e.inst)
  in
  magic
  ^ Marshal.to_string
      { p_lang = e.lang; p_k = e.k; p_instance = text; p_outcome = e.outcome }
      []

let has_magic raw =
  String.length raw > String.length magic
  && String.sub raw 0 (String.length magic) = magic

let decode ?(check = true) raw =
  if not (has_magic raw) then Error "tier record: bad or missing version header"
  else
    match
      (Marshal.from_string raw (String.length magic) : payload)
    with
    | exception _ -> Error "tier record: undecodable payload"
    | p -> (
        match Graph_io.instance_of_string p.p_instance with
        | Error msg -> Error ("tier record: stored instance: " ^ msg)
        | Ok (g, s) -> (
            match Instance.create g s with
            | Error msg -> Error ("tier record: stored instance: " ^ msg)
            | Ok inst -> (
                let e =
                  { lang = p.p_lang; k = p.p_k; inst; outcome = p.p_outcome }
                in
                if not check then Ok e
                else
                  match Outcome.certificate p.p_outcome with
                  | None -> Ok e
                  | Some cert -> (
                      match Outcome.check_certificate inst cert with
                      | Ok () -> Ok e
                      | Error msg ->
                          Error ("tier record: certificate re-check: " ^ msg)))))

let to_hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "bad hex payload: odd length"
  else
    let nibble c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
      | _ -> None
    in
    let b = Bytes.create (n / 2) in
    let rec go i =
      if i >= n / 2 then Ok (Bytes.unsafe_to_string b)
      else
        match (nibble s.[2 * i], nibble s.[(2 * i) + 1]) with
        | Some hi, Some lo ->
            Bytes.set b i (Char.chr ((hi lsl 4) lor lo));
            go (i + 1)
        | _ -> Error "bad hex payload: non-hex digit"
    in
    go 0

type t = Store.Log.t

let open_ ?fsync ?auto_compact_bytes dir =
  let check ~key:_ value = Result.is_ok (decode ~check:true value) in
  Store.Log.open_ ?fsync ?auto_compact_bytes ~check dir

let find t key =
  match Store.Log.find t key with
  | None -> None
  | Some raw -> (
      match decode ~check:false raw with
      | Ok e -> Some e
      | Error _ ->
          (* Unreachable after a checked recovery unless the file was
             damaged under a live store; drop and recompute. *)
          Store.Log.remove t key;
          None)

let find_raw = Store.Log.find
let put t key e = Store.Log.put t key (encode e)

let put_raw t key raw =
  match decode ~check:true raw with
  | Error _ as e -> e
  | Ok _ ->
      Store.Log.put t key raw;
      Ok ()

let remove = Store.Log.remove
let compact = Store.Log.compact
let sync = Store.Log.sync
let close = Store.Log.close
let length = Store.Log.length
let disk_bytes = Store.Log.disk_bytes
let stats = Store.Log.stats
