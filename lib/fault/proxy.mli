(** The chaos proxy: a line-level TCP/Unix-socket proxy that sits
    between a router and its shards (or a client and a server) and
    injects transport faults into the newline-JSON protocol stream —
    delays, connection resets, truncated lines, corrupted bytes.

    The proxy is deliberately line-oriented: the protocol is one JSON
    object per line in each direction, so faulting whole lines gives
    precise, countable injections (the Nth line of a connection's
    direction, deterministic per seed) where a byte-position fault
    schedule would depend on kernel read boundaries.

    Fault schedules are deterministic per (seed, direction, rule, line
    ordinal): every connection sees the same schedule at the same line
    ordinals, so a seeded chaos run is as reproducible as its thread
    interleaving allows.  Corruption never produces a newline byte (it
    would silently split one line into two); everything else about the
    corrupted line — including the now-wrong integrity checksum — is
    the receiver's problem, which is the point. *)

type action =
  | Delay_ms of int  (** hold the line for N ms before forwarding *)
  | Reset  (** drop both sides of the connection on the spot *)
  | Truncate  (** forward a strict prefix of the line, then drop *)
  | Corrupt  (** flip one byte of the line (never to a newline) *)

type rule = { action : action; trigger : Trigger.t }

val rules_of_string : string -> (rule list, string) result
(** Comma-separated [ACTION@TRIGGER] with trigger grammar as in
    {!Trigger.of_string}:
    ["delay-ms:50@1-in:20,reset@1-in:500,truncate@1-in:97,corrupt@1-in:61"].
    Empty string: no faults (a transparent proxy, the bench's overhead
    row). *)

val rules_to_string : rule list -> string

type t

val create :
  ?seed:int -> listen:Unix.sockaddr -> upstream:Unix.sockaddr -> rule list -> t
(** Bind the listen address (unlinking a stale Unix socket path first).
    @raise Unix.Unix_error when binding fails. *)

val run : t -> unit
(** Accept loop: one pump thread per direction per connection; returns
    after {!shutdown}. *)

val shutdown : t -> unit
(** Close the listener and every live connection; idempotent. *)

val stats : t -> (string * int) list
(** [connections], [lines_up], [lines_down], and fire counts per
    action ([delayed], [reset], [truncated], [corrupted]). *)
