(** The process-wide failpoint registry: named sites compiled into the
    store and service hot paths, armed from a spec string at process
    start, firing on a {!Trigger} schedule derived purely from a seed.

    The registry exists to make the robustness claims testable:
    "corruption degrades to recompute, never a wrong answer" is only a
    promise until a harness can corrupt real appends, skip real fsyncs
    and shed real admissions on demand — reproducibly, so a failing
    run can be replayed from its seed.

    {b Zero cost when unarmed.}  Every compiled-in site guards on
    {!armed}, a single atomic load that is false in normal operation;
    the registry lookup, counters and trigger arithmetic are only ever
    reached inside a chaos run.

    {b Compiled-in sites:}
    - [store.append.corrupt] — flip one byte of the framed record
      before it reaches the file (position and mask hashed).
    - [store.append.torn] — write only a prefix of the frame (a torn
      write; recovery truncates to the valid prefix, a live reader is
      saved by the certificate re-check).
    - [store.fsync.skip] — silently skip a requested fsync (a lying
      disk; only observable across a crash).
    - [server.admit.overload] — shed an admission as if the gate were
      full ([overloaded]/[queue_full] to the client).
    - [server.pool.reject] — refuse a pool submission as if the
      submission queue were full. *)

val parse : string -> ((string * Trigger.t) list, string) result
(** Spec grammar: comma-separated [NAME=TRIGGER], e.g.
    ["store.append.corrupt=1-in:50,server.admit.overload=after:100"].
    The empty string is the empty list. *)

val arm : ?seed:int -> string -> (unit, string) result
(** Replace the registry with the spec's sites and set the seed.
    Arming an empty spec disarms. *)

val disarm : unit -> unit

val armed : unit -> bool
(** One atomic load; the guard every site checks first. *)

val fire : string -> bool
(** [fire site] — true when the armed registry says this call of
    [site] should fail.  Unknown or unarmed sites never fire.  Counts
    calls and fires per site. *)

val salt : string -> int
(** The site's hash salt (seed ⊕ name hash) — for sites that need
    extra deterministic choices (which byte to corrupt, how much of a
    frame to tear). *)

val stats : unit -> (string * int * int) list
(** [(site, calls, fires)] per armed site, in spec order. *)
