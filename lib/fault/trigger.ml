type t = Once | After of int | One_in of int

let of_string s =
  let int_arg prefix =
    let a =
      String.sub s (String.length prefix) (String.length s - String.length prefix)
    in
    match int_of_string_opt a with
    | Some n when n >= 0 -> Ok n
    | _ -> Error (Printf.sprintf "trigger %S: bad count %S" s a)
  in
  if s = "once" then Ok Once
  else if String.length s > 6 && String.sub s 0 6 = "after:" then
    Result.map (fun n -> After n) (int_arg "after:")
  else if String.length s > 5 && String.sub s 0 5 = "1-in:" then
    match int_arg "1-in:" with
    | Ok n when n >= 1 -> Ok (One_in n)
    | Ok _ -> Error (Printf.sprintf "trigger %S: 1-in:N needs N >= 1" s)
    | Error _ as e -> e
  else Error (Printf.sprintf "trigger %S: expected once, after:K or 1-in:N" s)

let to_string = function
  | Once -> "once"
  | After k -> Printf.sprintf "after:%d" k
  | One_in n -> Printf.sprintf "1-in:%d" n

let hits t ~salt call =
  match t with
  | Once -> call = 0
  | After k -> call = k
  | One_in n -> Rng.mix salt call mod n = 0
