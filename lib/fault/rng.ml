let mix salt n =
  let h = (salt * 0x1000193) lxor ((n + 1) * 0x9E3779B9) in
  let h = h lxor (h lsr 16) in
  let h = h * 0x45d9f3b in
  let h = h lxor (h lsr 16) in
  let h = h * 0x45d9f3b in
  let h = h lxor (h lsr 16) in
  h land max_int

let unit_float h = float_of_int (h land 0x3FFFFFFF) /. 1073741824.0

let of_name name =
  String.fold_left
    (fun a c -> ((a * 0x1000193) lxor Char.code c) land max_int)
    0x811c9dc5 name
