(** When a failpoint or proxy fault fires: on the first call, on the
    K-th call, or on a hashed 1-in-N schedule — all deterministic from
    a seed, no [Random]. *)

type t =
  | Once  (** fire on the first call, never again *)
  | After of int  (** fire on call [K] (0-based), once *)
  | One_in of int  (** fire each call with probability [1/N], hashed *)

val of_string : string -> (t, string) result
(** ["once"], ["after:K"], ["1-in:N"]. *)

val to_string : t -> string

val hits : t -> salt:int -> int -> bool
(** [hits t ~salt call] — does the trigger fire on [call] (0-based
    ordinal)?  Pure; [salt] feeds the [One_in] hash. *)
