type state = {
  trigger : Trigger.t;
  salt : int;
  mutable calls : int;
  mutable fires : int;
}

let armed_flag = Atomic.make false
let lock = Mutex.create ()
let sites : (string * state) list ref = ref []
let tbl : (string, state) Hashtbl.t = Hashtbl.create 16

let parse spec =
  if String.trim spec = "" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          let p = String.trim p in
          match String.index_opt p '=' with
          | None -> Error (Printf.sprintf "failpoint %S: expected NAME=TRIGGER" p)
          | Some i -> (
              let name = String.sub p 0 i in
              let t = String.sub p (i + 1) (String.length p - i - 1) in
              if name = "" then Error (Printf.sprintf "failpoint %S: empty name" p)
              else
                match Trigger.of_string t with
                | Ok trigger -> go ((name, trigger) :: acc) rest
                | Error e -> Error e))
    in
    go [] (String.split_on_char ',' spec)

let disarm () =
  Mutex.lock lock;
  Atomic.set armed_flag false;
  sites := [];
  Hashtbl.reset tbl;
  Mutex.unlock lock

let arm ?(seed = 0) spec =
  match parse spec with
  | Error _ as e -> e
  | Ok l ->
      Mutex.lock lock;
      sites := [];
      Hashtbl.reset tbl;
      List.iter
        (fun (name, trigger) ->
          let st =
            { trigger; salt = seed lxor Rng.of_name name; calls = 0; fires = 0 }
          in
          sites := (name, st) :: !sites;
          Hashtbl.replace tbl name st)
        l;
      sites := List.rev !sites;
      Atomic.set armed_flag (l <> []);
      Mutex.unlock lock;
      Ok ()

let armed () = Atomic.get armed_flag

let fire name =
  if not (Atomic.get armed_flag) then false
  else begin
    Mutex.lock lock;
    let hit =
      match Hashtbl.find_opt tbl name with
      | None -> false
      | Some st ->
          let call = st.calls in
          st.calls <- call + 1;
          let hit = Trigger.hits st.trigger ~salt:st.salt call in
          if hit then st.fires <- st.fires + 1;
          hit
    in
    Mutex.unlock lock;
    hit
  end

let salt name =
  Mutex.lock lock;
  let s =
    match Hashtbl.find_opt tbl name with
    | Some st -> st.salt
    | None -> Rng.of_name name
  in
  Mutex.unlock lock;
  s

let stats () =
  Mutex.lock lock;
  let l = List.map (fun (n, st) -> (n, st.calls, st.fires)) !sites in
  Mutex.unlock lock;
  l
