(** The deterministic hash stream under the whole fault plane: the same
    multiply-xor-shift avalanche as {!Service.Client.retry_delay_s}, so
    there is exactly one [Random]-free idiom to audit.  Pure and
    stateless — a site's schedule depends only on (seed, site, ordinal). *)

val mix : int -> int -> int
(** [mix salt n] — avalanche of the pair; non-negative. *)

val unit_float : int -> float
(** Map a hash to [\[0, 1)] — 30 mantissa bits. *)

val of_name : string -> int
(** FNV-fold a site name to a salt, so each site gets its own hash
    stream regardless of registration order. *)
