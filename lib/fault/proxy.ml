type action = Delay_ms of int | Reset | Truncate | Corrupt
type rule = { action : action; trigger : Trigger.t }

let action_of_string s =
  if s = "reset" then Ok Reset
  else if s = "truncate" then Ok Truncate
  else if s = "corrupt" then Ok Corrupt
  else if String.length s > 9 && String.sub s 0 9 = "delay-ms:" then
    match int_of_string_opt (String.sub s 9 (String.length s - 9)) with
    | Some n when n >= 0 -> Ok (Delay_ms n)
    | _ -> Error (Printf.sprintf "fault %S: bad delay" s)
  else Error (Printf.sprintf "fault %S: expected delay-ms:N, reset, truncate or corrupt" s)

let action_to_string = function
  | Delay_ms n -> Printf.sprintf "delay-ms:%d" n
  | Reset -> "reset"
  | Truncate -> "truncate"
  | Corrupt -> "corrupt"

let rules_of_string spec =
  if String.trim spec = "" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          let p = String.trim p in
          match String.index_opt p '@' with
          | None -> Error (Printf.sprintf "fault %S: expected ACTION@TRIGGER" p)
          | Some i -> (
              match action_of_string (String.sub p 0 i) with
              | Error e -> Error e
              | Ok action -> (
                  match
                    Trigger.of_string
                      (String.sub p (i + 1) (String.length p - i - 1))
                  with
                  | Error e -> Error e
                  | Ok trigger -> go ({ action; trigger } :: acc) rest)))
    in
    go [] (String.split_on_char ',' spec)

let rules_to_string rules =
  String.concat ","
    (List.map
       (fun r -> action_to_string r.action ^ "@" ^ Trigger.to_string r.trigger)
       rules)

type t = {
  listen_fd : Unix.file_descr;
  upstream : Unix.sockaddr;
  rules : rule list;
  seed : int;
  stop : bool Atomic.t;
  live : (Unix.file_descr list ref * Mutex.t);
  connections : int Atomic.t;
  lines_up : int Atomic.t;
  lines_down : int Atomic.t;
  delayed : int Atomic.t;
  resets : int Atomic.t;
  truncated : int Atomic.t;
  corrupted : int Atomic.t;
}

let create ?(seed = 0) ~listen ~upstream rules =
  (match listen with
  | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ());
  let domain = Unix.domain_of_sockaddr listen in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match listen with
  | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | _ -> ());
  Unix.bind fd listen;
  Unix.listen fd 64;
  {
    listen_fd = fd;
    upstream;
    rules;
    seed;
    stop = Atomic.make false;
    live = (ref [], Mutex.create ());
    connections = Atomic.make 0;
    lines_up = Atomic.make 0;
    lines_down = Atomic.make 0;
    delayed = Atomic.make 0;
    resets = Atomic.make 0;
    truncated = Atomic.make 0;
    corrupted = Atomic.make 0;
  }

let track t fd =
  let l, m = t.live in
  Mutex.lock m;
  l := fd :: !l;
  Mutex.unlock m

let close_quiet fd =
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Exactly-once close: an fd is closed by whoever removes it from the
   live list — the two sibling pumps and [shutdown] race for that
   right.  Without the guard, a second close of a stale fd number could
   tear down an unrelated, freshly-accepted connection that the kernel
   assigned the same number. *)
let release t fd =
  let l, m = t.live in
  Mutex.lock m;
  let mine = List.memq fd !l in
  if mine then l := List.filter (fun f -> f != fd) !l;
  Mutex.unlock m;
  if mine then close_quiet fd

exception Drop

(* One direction of one connection: read lines from [src], pass them
   through the fault rules, write to [dst].  Rule counters are local to
   the (connection, direction), so the schedule depends only on line
   ordinals. *)
let pump t ~dir src_fd dst_fd =
  let dir_salt = t.seed lxor Rng.of_name dir in
  let counters = List.map (fun _ -> ref 0) t.rules in
  let lines = if dir = "up" then t.lines_up else t.lines_down in
  (try
     (* Channel creation is inside the rescue: the sibling pump may have
        already torn the connection down (reset), in which case
        [of_descr] raises EBADF. *)
     let ic = Unix.in_channel_of_descr src_fd in
     let oc = Unix.out_channel_of_descr dst_fd in
     while not (Atomic.get t.stop) do
       let line = input_line ic in
       Atomic.incr lines;
       let line = ref line in
       List.iteri
         (fun i r ->
           let cnt = List.nth counters i in
           let call = !cnt in
           incr cnt;
           let salt = dir_salt lxor Rng.mix i 0 in
           if Trigger.hits r.trigger ~salt call then
             match r.action with
             | Delay_ms ms ->
                 Atomic.incr t.delayed;
                 Thread.delay (float_of_int ms /. 1000.)
             | Reset ->
                 Atomic.incr t.resets;
                 raise Drop
             | Truncate ->
                 let s = !line in
                 let len = String.length s in
                 let keep = if len = 0 then 0 else Rng.mix salt call mod len in
                 Atomic.incr t.truncated;
                 output_string oc (String.sub s 0 keep);
                 flush oc;
                 raise Drop
             | Corrupt ->
                 let s = Bytes.of_string !line in
                 let len = Bytes.length s in
                 if len > 0 then begin
                   let pos = Rng.mix salt call mod len in
                   let orig = Bytes.get s pos in
                   let mask = 1 + (Rng.mix salt (call + 1) mod 255) in
                   let b = Char.code orig lxor mask in
                   let b = if b = Char.code '\n' then b lxor 0x01 else b in
                   Bytes.set s pos (Char.chr (b land 0xff));
                   Atomic.incr t.corrupted;
                   line := Bytes.to_string s
                 end)
         t.rules;
       output_string oc !line;
       output_char oc '\n';
       flush oc
     done
   with
  | End_of_file | Drop | Sys_error _ | Unix.Unix_error _ -> ());
  release t src_fd;
  release t dst_fd

let handle_conn t client_fd =
  match
    let up_fd = Unix.socket (Unix.domain_of_sockaddr t.upstream) Unix.SOCK_STREAM 0 in
    (try Unix.connect up_fd t.upstream
     with e ->
       close_quiet up_fd;
       raise e);
    up_fd
  with
  | exception _ -> release t client_fd
  | up_fd ->
      track t up_fd;
      Atomic.incr t.connections;
      let _up = Thread.create (fun () -> pump t ~dir:"up" client_fd up_fd) () in
      let _down = Thread.create (fun () -> pump t ~dir:"down" up_fd client_fd) () in
      ()

let run t =
  (try
     while not (Atomic.get t.stop) do
       let client_fd, _ = Unix.accept t.listen_fd in
       if Atomic.get t.stop then close_quiet client_fd
       else begin
         track t client_fd;
         handle_conn t client_fd
       end
     done
   with Unix.Unix_error _ | Sys_error _ -> ());
  close_quiet t.listen_fd

let shutdown t =
  if not (Atomic.exchange t.stop true) then begin
    close_quiet t.listen_fd;
    let l, m = t.live in
    Mutex.lock m;
    let fds = !l in
    l := [];
    Mutex.unlock m;
    List.iter close_quiet fds
  end

let stats t =
  [
    ("connections", Atomic.get t.connections);
    ("lines_up", Atomic.get t.lines_up);
    ("lines_down", Atomic.get t.lines_down);
    ("delayed", Atomic.get t.delayed);
    ("reset", Atomic.get t.resets);
    ("truncated", Atomic.get t.truncated);
    ("corrupted", Atomic.get t.corrupted);
  ]
