type t = { width : int; words : int array }

let bits_per_word = Sys.int_size
let word_count width = (width + bits_per_word - 1) / bits_per_word

let create width =
  if width < 0 then invalid_arg "Bitset.create: negative width";
  { width; words = Array.make (word_count width) 0 }

(* All-ones pattern for the last word of a set of [width] bits. *)
let last_word_mask width =
  let r = width mod bits_per_word in
  if r = 0 then -1 else (1 lsl r) - 1

let full width =
  let t = create width in
  let nw = Array.length t.words in
  if nw > 0 then begin
    Array.fill t.words 0 nw (-1);
    t.words.(nw - 1) <- last_word_mask width
  end;
  t

let width t = t.width
let copy t = { width = t.width; words = Array.copy t.words }

let check t i op =
  if i < 0 || i >= t.width then
    invalid_arg (Printf.sprintf "Bitset.%s: index %d out of [0, %d)" op i t.width)

let mem t i =
  check t i "mem";
  (t.words.(i / bits_per_word) lsr (i mod bits_per_word)) land 1 = 1

let add t i =
  check t i "add";
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i "remove";
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

let fill t =
  let nw = Array.length t.words in
  if nw > 0 then begin
    Array.fill t.words 0 nw (-1);
    t.words.(nw - 1) <- last_word_mask t.width
  end

let is_empty t = Array.for_all (fun w -> w = 0) t.words
let equal a b = a.width = b.width && a.words = b.words

(* Per-16-bit-chunk popcount table; 63-bit words need four lookups. *)
let pop16 =
  Bytes.init 65536 (fun i ->
      let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
      Char.chr (go i 0))

let popcount x =
  Char.code (Bytes.unsafe_get pop16 (x land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 ((x lsr 16) land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 ((x lsr 32) land 0xffff))
  + Char.code (Bytes.unsafe_get pop16 (x lsr 48))

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let iter f t =
  for wi = 0 to Array.length t.words - 1 do
    let base = wi * bits_per_word in
    let w = ref t.words.(wi) in
    while !w <> 0 do
      let b = !w land - !w in
      f (base + popcount (b - 1));
      w := !w land (!w - 1)
    done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list width l =
  let t = create width in
  List.iter (fun i -> add t i) l;
  t

let first t =
  let rec go wi =
    if wi >= Array.length t.words then None
    else
      let w = t.words.(wi) in
      if w = 0 then go (wi + 1)
      else Some ((wi * bits_per_word) + popcount ((w land -w) - 1))
  in
  go 0

let same_width a b op =
  if a.width <> b.width then invalid_arg ("Bitset." ^ op ^ ": width mismatch")

let inter_inplace dst src =
  same_width dst src "inter_inplace";
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land src.words.(i)
  done

let union_inplace dst src =
  same_width dst src "union_inplace";
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) lor src.words.(i)
  done

let diff_inplace dst src =
  same_width dst src "diff_inplace";
  for i = 0 to Array.length dst.words - 1 do
    dst.words.(i) <- dst.words.(i) land lnot src.words.(i)
  done

let disjoint a b =
  same_width a b "disjoint";
  let rec go i =
    i >= Array.length a.words || (a.words.(i) land b.words.(i) = 0 && go (i + 1))
  in
  go 0

let intersects a b = not (disjoint a b)

let subset a b =
  same_width a b "subset";
  let rec go i =
    i >= Array.length a.words
    || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
  in
  go 0

let hash t =
  let h = ref 0x811c9dc5 in
  Array.iter
    (fun w ->
      (* fold each word in two halves to keep the multiply cheap *)
      h := (!h lxor (w land 0x3fffffff)) * 0x01000193;
      h := (!h lxor (w lsr 30)) * 0x01000193)
    t.words;
  !h land max_int

let pp ppf t =
  Format.fprintf ppf "{@[<hov>";
  let sep = ref false in
  iter
    (fun i ->
      if !sep then Format.fprintf ppf ",@ ";
      sep := true;
      Format.pp_print_int ppf i)
    t;
  Format.fprintf ppf "@]}"
