(** Fixed-width mutable bitsets packed into native [int] words.

    A value of type [t] represents a subset of [0 .. width - 1].  All
    operations are O(width / word_size) or better; [mem], [add] and
    [remove] are O(1).  Words are native OCaml ints ([Sys.int_size]
    bits, i.e. 63 on 64-bit systems), so the kernels below compile to a
    handful of word ops with no allocation.

    These sets back the hot paths of the definability checkers: CSP
    domains in [Hom], adjacency and reachability matrices in
    [Data_graph] (via {!Bitmatrix}), and the tuple-of-state-sets BFS in
    [Witness_search]. *)

type t

val bits_per_word : int
(** [Sys.int_size]: 63 on 64-bit systems. *)

val create : int -> t
(** [create width] is the empty subset of [0 .. width - 1].  [width] may
    be [0].  @raise Invalid_argument on negative width. *)

val full : int -> t
(** [full width] contains all of [0 .. width - 1]. *)

val of_list : int -> int list -> t
val copy : t -> t

val width : t -> int
(** The width the set was created with (not its cardinality). *)

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit

val clear : t -> unit
(** Remove every element. *)

val fill : t -> unit
(** Add every element of [0 .. width - 1]. *)

val is_empty : t -> bool
val cardinal : t -> int
(** Population count, via a 16-bit lookup table. *)

val equal : t -> t -> bool

val first : t -> int option
(** Smallest element, if any. *)

val iter : (int -> unit) -> t -> unit
(** Ascending order.  Each machine word is read once when the iteration
    reaches it, so [f] may remove the element it was called with (as the
    CSP revise loop does) but must not add elements. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list

val inter_inplace : t -> t -> unit
(** [inter_inplace dst src] sets [dst] to [dst ∩ src].
    @raise Invalid_argument on width mismatch (also below). *)

val union_inplace : t -> t -> unit
val diff_inplace : t -> t -> unit

val disjoint : t -> t -> bool
(** [disjoint a b] iff [a ∩ b = ∅] — a word-wise AND + test with no
    allocation; the inner loop of the CSP revise. *)

val intersects : t -> t -> bool
val subset : t -> t -> bool

val hash : t -> int
(** FNV-style hash over all words (unlike [Hashtbl.hash], which samples
    a bounded prefix of large structures). *)

val pp : Format.formatter -> t -> unit
