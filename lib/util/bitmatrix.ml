type t = { rows : int; cols : int; row : Bitset.t array }

let create rows cols =
  if rows < 0 then invalid_arg "Bitmatrix.create: negative rows";
  { rows; cols; row = Array.init rows (fun _ -> Bitset.create cols) }

let rows m = m.rows
let cols m = m.cols

let check_row m i op =
  if i < 0 || i >= m.rows then
    invalid_arg (Printf.sprintf "Bitmatrix.%s: row %d out of [0, %d)" op i m.rows)

let get m i j =
  check_row m i "get";
  Bitset.mem m.row.(i) j

let set m i j =
  check_row m i "set";
  Bitset.add m.row.(i) j

let unset m i j =
  check_row m i "unset";
  Bitset.remove m.row.(i) j

let row m i =
  check_row m i "row";
  m.row.(i)

let copy m = { m with row = Array.map Bitset.copy m.row }

let equal a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 Bitset.equal a.row b.row

let transpose m =
  let t = create m.cols m.rows in
  for i = 0 to m.rows - 1 do
    Bitset.iter (fun j -> Bitset.add t.row.(j) i) m.row.(i)
  done;
  t

let inter_inplace dst src =
  if dst.rows <> src.rows || dst.cols <> src.cols then
    invalid_arg "Bitmatrix.inter_inplace: dimension mismatch";
  for i = 0 to dst.rows - 1 do
    Bitset.inter_inplace dst.row.(i) src.row.(i)
  done

let set_diagonal m =
  if m.rows <> m.cols then invalid_arg "Bitmatrix.set_diagonal: not square";
  for i = 0 to m.rows - 1 do
    Bitset.add m.row.(i) i
  done

(* Warshall with word-parallel row unions: row_i |= row_k whenever the
   (i, k) bit is set.  O(n^2 * n / word_size). *)
let closure_inplace m =
  if m.rows <> m.cols then invalid_arg "Bitmatrix.closure_inplace: not square";
  for k = 0 to m.rows - 1 do
    let rk = m.row.(k) in
    for i = 0 to m.rows - 1 do
      if i <> k && Bitset.mem m.row.(i) k then Bitset.union_inplace m.row.(i) rk
    done
  done

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      Format.pp_print_char ppf (if get m i j then '1' else '.')
    done;
    if i < m.rows - 1 then Format.pp_print_cut ppf ()
  done;
  Format.fprintf ppf "@]"
