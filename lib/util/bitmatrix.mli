(** Dense 0/1 matrices stored as one {!Bitset} per row — the packed
    representation of binary relations on node sets: per-label adjacency,
    reachability closures, and CSP constraint tables.

    Rows are exposed directly ({!row} returns the underlying bitset, not
    a copy) so kernels can run word-parallel row operations: a CSP revise
    is [Bitset.disjoint (row m x) dom] per candidate [x], and transitive
    closure is Warshall with row unions. *)

type t

val create : int -> int -> t
(** [create rows cols]: the all-zeros matrix. *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> bool
val set : t -> int -> int -> unit
val unset : t -> int -> int -> unit

val row : t -> int -> Bitset.t
(** The underlying row — shared, not a copy.  Callers that only read may
    use it directly; mutate only if you own the matrix. *)

val copy : t -> t
val equal : t -> t -> bool

val transpose : t -> t

val inter_inplace : t -> t -> unit
(** Elementwise AND. @raise Invalid_argument on dimension mismatch. *)

val set_diagonal : t -> unit
(** @raise Invalid_argument if not square (also below). *)

val closure_inplace : t -> unit
(** Transitive closure (Warshall with word-parallel row unions),
    in place.  Combine with {!set_diagonal} first for the
    reflexive-transitive closure. *)

val pp : Format.formatter -> t -> unit
