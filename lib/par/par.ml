(* Work-stealing domain pool.

   Each batch owns a Chase–Lev deque: the opening domain pushes tasks at
   the bottom and pops them LIFO; worker domains steal FIFO from the top
   via CAS.  Live batches register in a fixed victim table so several
   batches (from different system threads, or the service submission
   path) run concurrently; idle workers scan the table from a randomized
   start and back off exponentially — brief spinning first, then a
   condition variable — when repeated scans come up empty. *)

let now_s = Unix.gettimeofday

module Deque = struct
  (* All indices and cells are [Atomic]: OCaml 5 atomics are seq-cst, so
     the classic Chase–Lev fences are implied.  [top] only ever grows
     (no ABA); the buffer is grown owner-side by copying live cells into
     a fresh array and republishing — a thief holding the old buffer
     still reads valid cells because live logical indices are never
     moved within a buffer, and the owner never writes a retired one. *)
  type 'a buffer = { mask : int; cells : 'a option Atomic.t array }

  type 'a t = {
    top : int Atomic.t; (* next steal index; thieves CAS it forward *)
    bottom : int Atomic.t; (* next push index; owner-written *)
    buf : 'a buffer Atomic.t;
  }

  let make_buffer capacity =
    { mask = capacity - 1; cells = Array.init capacity (fun _ -> Atomic.make None) }

  let next_pow2 n =
    let rec go p = if p >= n then p else go (p * 2) in
    go 8

  let create ?(capacity = 64) () =
    let capacity = next_pow2 (max 1 capacity) in
    {
      top = Atomic.make 0;
      bottom = Atomic.make 0;
      buf = Atomic.make (make_buffer capacity);
    }

  let length q =
    let b = Atomic.get q.bottom and t = Atomic.get q.top in
    max 0 (b - t)

  (* Owner only. *)
  let grow q old t b =
    let nbuf = make_buffer (2 * (old.mask + 1)) in
    for i = t to b - 1 do
      Atomic.set nbuf.cells.(i land nbuf.mask) (Atomic.get old.cells.(i land old.mask))
    done;
    Atomic.set q.buf nbuf;
    nbuf

  let push q v =
    let b = Atomic.get q.bottom and t = Atomic.get q.top in
    let buf = Atomic.get q.buf in
    let buf = if b - t > buf.mask then grow q buf t b else buf in
    Atomic.set buf.cells.(b land buf.mask) (Some v);
    Atomic.set q.bottom (b + 1)

  let pop q =
    let b = Atomic.get q.bottom - 1 in
    (* Publish the claim on [b] before re-reading [top]: a thief that
       subsequently targets [b] will lose its CAS-vs-owner race below. *)
    Atomic.set q.bottom b;
    let t = Atomic.get q.top in
    if b < t then begin
      Atomic.set q.bottom t;
      None
    end
    else
      let buf = Atomic.get q.buf in
      let cell = buf.cells.(b land buf.mask) in
      if b > t then begin
        let v = Atomic.get cell in
        Atomic.set cell None;
        v
      end
      else begin
        (* Last element: race any thief for it through [top]. *)
        let won = Atomic.compare_and_set q.top t (t + 1) in
        Atomic.set q.bottom (t + 1);
        if won then begin
          let v = Atomic.get cell in
          Atomic.set cell None;
          v
        end
        else None
      end

  let steal q =
    let t = Atomic.get q.top in
    let b = Atomic.get q.bottom in
    if t >= b then `Empty
    else
      let buf = Atomic.get q.buf in
      let v = Atomic.get buf.cells.(t land buf.mask) in
      if Atomic.compare_and_set q.top t (t + 1) then
        match v with
        | Some v -> `Stolen v
        | None -> `Retry (* cell already recycled: treat as a lost race *)
      else `Retry
end

module Pool = struct
  (* A pool task is pre-wrapped: [run_t] stores its result or exception
     into the batch's arrays and never raises, so workers need no
     handler around stolen work. *)
  type task = { run_t : unit -> unit; batch : batch }

  and batch = {
    deque : task Deque.t;
    pending : int Atomic.t; (* tasks not yet finished *)
    bm : Mutex.t;
    bcv : Condition.t; (* signalled when [pending] hits 0 *)
    submitted_s : float; (* submit timestamp; 0. for owner-drained runs *)
  }

  (* ---- always-on tallies (server [stats] must work with obs off) ---- *)

  let s_push = Atomic.make 0
  let s_pop = Atomic.make 0
  let s_steal_ok = Atomic.make 0
  let s_steal_fail = Atomic.make 0
  let s_nested = Atomic.make 0
  let s_submitted = Atomic.make 0
  let s_rejected = Atomic.make 0
  let s_qwait_count = Atomic.make 0
  let s_qwait_total_ns = Atomic.make 0
  let s_qwait_max_ns = Atomic.make 0

  (* Obs mirrors: no-ops while telemetry is disabled, picked up by the
     Prometheus exposition automatically when it is not. *)
  let c_steal_ok = Obs.Counter.make "steal.success"
  let c_steal_fail = Obs.Counter.make "steal.fail"
  let c_push = Obs.Counter.make "deque.push"
  let c_pop = Obs.Counter.make "deque.pop"
  let c_nested = Obs.Counter.make "pool.nested_inline"
  let h_qwait = Obs.Histogram.make "pool.queue_wait"

  let atomic_max a v =
    let rec go () =
      let cur = Atomic.get a in
      if v > cur && not (Atomic.compare_and_set a cur v) then go ()
    in
    go ()

  (* ---- victim table ---- *)

  let n_slots = 64
  let slots : batch option Atomic.t array = Array.init n_slots (fun _ -> Atomic.make None)
  let n_sources = Atomic.make 0

  let register b =
    let rec go i =
      if i >= n_slots then None
      else if Atomic.compare_and_set slots.(i) None (Some b) then begin
        Atomic.incr n_sources;
        Some i
      end
      else go (i + 1)
    in
    go 0

  let unregister i =
    Atomic.set slots.(i) None;
    Atomic.decr n_sources

  (* ---- worker lifecycle ---- *)

  let lock = Mutex.create ()
  let work_cv = Condition.create ()

  (* Bumped (under [lock]) whenever new work is published; sleeping
     workers wait for a bump so a batch published between their last
     scan and the wait is never missed. *)
  let generation = Atomic.make 0
  let stop = Atomic.make false
  let handles : unit Domain.t list ref = ref []
  let spawned = ref 0
  let at_exit_registered = ref false

  let default_size =
    match Sys.getenv_opt "PAR_DOMAINS" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> n
        | _ -> 1)
    | None -> 1

  let target = Atomic.make default_size
  let size () = Atomic.get target
  let set_size n = Atomic.set target (max 1 n)

  (* True in worker domains: a task that itself calls [run]/[submit]
     must execute inline rather than publish a nested batch. *)
  let in_pool_key = Domain.DLS.new_key (fun () -> false)
  let in_pool () = Domain.DLS.get in_pool_key

  (* ---- submission backlog bound ---- *)

  let submission_cap = Atomic.make 32
  let submission_bound () = Atomic.get submission_cap
  let set_submission_bound n = Atomic.set submission_cap (max 0 n)
  let backlog = Atomic.make 0

  (* ---- task execution ---- *)

  let finish_task (b : batch) =
    if Atomic.fetch_and_add b.pending (-1) = 1 then begin
      Mutex.lock b.bm;
      Condition.broadcast b.bcv;
      Mutex.unlock b.bm
    end

  let execute (t : task) =
    let b = t.batch in
    if b.submitted_s > 0. then begin
      (* External submission: leaving the queue — release its backlog
         slot and record how long it waited. *)
      ignore (Atomic.fetch_and_add backlog (-1));
      let wait_ns = max 0 (int_of_float ((now_s () -. b.submitted_s) *. 1e9)) in
      Atomic.incr s_qwait_count;
      ignore (Atomic.fetch_and_add s_qwait_total_ns wait_ns);
      atomic_max s_qwait_max_ns wait_ns;
      Obs.Histogram.record_ns h_qwait wait_ns
    end;
    t.run_t ();
    finish_task b

  (* One randomized sweep over the victim table; [true] iff a task was
     stolen and executed. *)
  let try_steal rng =
    if Atomic.get n_sources = 0 then false
    else begin
      let x = !rng in
      let x = x lxor (x lsl 13) in
      let x = x lxor (x lsr 7) in
      let x = x lxor (x lsl 17) in
      rng := x;
      let start = x land (n_slots - 1) in
      let stolen = ref false in
      let i = ref 0 in
      while (not !stolen) && !i < n_slots do
        let s = (start + !i) land (n_slots - 1) in
        (match Atomic.get slots.(s) with
        | None -> ()
        | Some b -> (
            match Deque.steal b.deque with
            | `Stolen task ->
                Atomic.incr s_steal_ok;
                Obs.Counter.incr c_steal_ok;
                execute task;
                stolen := true
            | `Retry ->
                Atomic.incr s_steal_fail;
                Obs.Counter.incr c_steal_fail
            | `Empty -> ()));
        incr i
      done;
      !stolen
    end

  let worker wid =
    Domain.DLS.set in_pool_key true;
    let rng = ref (((wid + 1) * 0x9E3779B9) lor 1) in
    let fails = ref 0 in
    while not (Atomic.get stop) do
      let gen = Atomic.get generation in
      if try_steal rng then fails := 0
      else begin
        incr fails;
        if !fails <= 8 then
          (* Exponential backoff: spin a little longer after each empty
             sweep before paying for the condition variable. *)
          for _ = 1 to 1 lsl !fails do
            Domain.cpu_relax ()
          done
        else begin
          Mutex.lock lock;
          while Atomic.get generation = gen && not (Atomic.get stop) do
            Condition.wait work_cv lock
          done;
          Mutex.unlock lock;
          fails := 0
        end
      end
    done

  let shutdown () =
    Mutex.lock lock;
    Atomic.set stop true;
    Condition.broadcast work_cv;
    Mutex.unlock lock;
    List.iter Domain.join !handles;
    Mutex.lock lock;
    handles := [];
    spawned := 0;
    Atomic.set stop false;
    Mutex.unlock lock

  let ensure_workers wanted =
    if !spawned < wanted then begin
      Mutex.lock lock;
      if not !at_exit_registered then begin
        at_exit_registered := true;
        at_exit shutdown
      end;
      for wid = !spawned to wanted - 1 do
        handles := Domain.spawn (fun () -> worker wid) :: !handles
      done;
      spawned := max !spawned wanted;
      Mutex.unlock lock
    end

  let wake_all () =
    Mutex.lock lock;
    Atomic.incr generation;
    Condition.broadcast work_cv;
    Mutex.unlock lock

  (* ---- batch plumbing shared by [run] and [submit] ---- *)

  let run_seq tasks = Array.map (fun f -> f ()) tasks

  let make_batch ~submitted_s n =
    {
      deque = Deque.create ~capacity:n ();
      pending = Atomic.make n;
      bm = Mutex.create ();
      bcv = Condition.create ();
      submitted_s;
    }

  let push_tasks (type a) batch (tasks : (unit -> a) array) (results : a option array)
      (errors : exn option array) =
    let n = Array.length tasks in
    for i = 0 to n - 1 do
      let run_t () =
        match tasks.(i) () with
        | v -> results.(i) <- Some v
        | exception e -> errors.(i) <- Some e
      in
      Deque.push batch.deque { run_t; batch };
      Atomic.incr s_push;
      Obs.Counter.incr c_push
    done

  let wait_done batch =
    Mutex.lock batch.bm;
    while Atomic.get batch.pending > 0 do
      Condition.wait batch.bcv batch.bm
    done;
    Mutex.unlock batch.bm

  let collect results errors =
    (* Lowest-indexed failure wins, after the whole batch completed. *)
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map (function Some v -> v | None -> assert false (* all tasks ran *)) results

  let nested_inline tasks =
    Atomic.incr s_nested;
    Obs.Counter.incr c_nested;
    run_seq tasks

  let run (type a) (tasks : (unit -> a) array) : a array =
    let n = Array.length tasks in
    if n = 0 then [||]
    else
      let p = size () in
      if p <= 1 || n = 1 then run_seq tasks
      else if in_pool () then nested_inline tasks
      else
        let batch = make_batch ~submitted_s:0. n in
        match register batch with
        | None -> run_seq tasks (* victim table full: degrade gracefully *)
        | Some slot ->
            let results : a option array = Array.make n None in
            let errors : exn option array = Array.make n None in
            push_tasks batch tasks results errors;
            ensure_workers (p - 1);
            wake_all ();
            (* The caller drains its own deque LIFO alongside thieves. *)
            let rec drain () =
              match Deque.pop batch.deque with
              | Some t ->
                  Atomic.incr s_pop;
                  Obs.Counter.incr c_pop;
                  execute t;
                  drain ()
              | None -> ()
            in
            drain ();
            wait_done batch;
            unregister slot;
            collect results errors

  let submit (type a) (tasks : (unit -> a) array) : (a array, [ `Queue_full ]) result =
    let n = Array.length tasks in
    if n = 0 then Ok [||]
    else
      let p = size () in
      if p <= 1 then Ok (run_seq tasks) (* no workers: run on the caller *)
      else if in_pool () then Ok (nested_inline tasks)
      else begin
        let cap = Atomic.get submission_cap in
        (* Admit iff there is any room; an oversized batch may overshoot
           the cap once rather than being unadmittable forever. *)
        let rec reserve () =
          let cur = Atomic.get backlog in
          if cur >= cap then false
          else if Atomic.compare_and_set backlog cur (cur + n) then true
          else reserve ()
        in
        if not (reserve ()) then begin
          Atomic.incr s_rejected;
          Error `Queue_full
        end
        else
          let batch = make_batch ~submitted_s:(now_s ()) n in
          match register batch with
          | None ->
              ignore (Atomic.fetch_and_add backlog (-n));
              Ok (run_seq tasks)
          | Some slot ->
              ignore (Atomic.fetch_and_add s_submitted n);
              let results : a option array = Array.make n None in
              let errors : exn option array = Array.make n None in
              push_tasks batch tasks results errors;
              ensure_workers p;
              wake_all ();
              wait_done batch;
              unregister slot;
              Ok (collect results errors)
      end

  let map ?chunk f arr =
    let n = Array.length arr in
    if n = 0 then [||]
    else
      let p = size () in
      if p <= 1 || n = 1 then Array.map f arr
      else begin
        let c =
          match chunk with
          | Some c -> max 1 c
          | None -> max 1 (1 + ((n - 1) / (4 * p)))
        in
        let nchunks = (n + c - 1) / c in
        if nchunks <= 1 then Array.map f arr
        else
          let parts =
            run
              (Array.init nchunks (fun ci () ->
                   let lo = ci * c in
                   let hi = min n (lo + c) in
                   Array.init (hi - lo) (fun k -> f arr.(lo + k))))
          in
          Array.concat (Array.to_list parts)
      end

  let map_list ?chunk f l = Array.to_list (map ?chunk f (Array.of_list l))

  let stats () =
    List.sort compare
      [
        ("size", size ());
        ("workers", !spawned);
        ("deque_push", Atomic.get s_push);
        ("deque_pop", Atomic.get s_pop);
        ("steal_success", Atomic.get s_steal_ok);
        ("steal_fail", Atomic.get s_steal_fail);
        ("nested_inline", Atomic.get s_nested);
        ("submitted", Atomic.get s_submitted);
        ("submit_rejected", Atomic.get s_rejected);
        ("submit_backlog", Atomic.get backlog);
        ("queue_wait_count", Atomic.get s_qwait_count);
        ("queue_wait_us_total", Atomic.get s_qwait_total_ns / 1000);
        ("queue_wait_us_max", Atomic.get s_qwait_max_ns / 1000);
      ]
end
