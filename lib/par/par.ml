module Pool = struct
  (* One batch at a time.  Tasks are claimed by index through [next];
     [pending] counts tasks not yet finished, so the caller can wait for
     stragglers after the index runs out.  Workers that wake up late (or
     spuriously) find [next >= n] and simply go back to waiting. *)
  type job = { task : int -> unit; n : int; next : int Atomic.t; pending : int Atomic.t }

  let lock = Mutex.create ()
  let work_cv = Condition.create ()
  let done_cv = Condition.create ()
  let current : job option ref = ref None

  (* Bumped (under [lock]) each time a batch is published; workers wait
     for a bump rather than for [current] itself so a batch that is
     published and fully drained between two waits is never replayed. *)
  let generation = ref 0
  let stop = ref false

  let default_size =
    match Sys.getenv_opt "PAR_DOMAINS" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> n
        | _ -> 1)
    | None -> 1

  let target = Atomic.make default_size
  let size () = Atomic.get target
  let set_size n = Atomic.set target (max 1 n)

  (* True in worker domains: a task that itself calls [run] must execute
     it inline rather than publish a second batch. *)
  let in_worker = Domain.DLS.new_key (fun () -> false)

  (* Only one batch may be in flight; [busy] also serializes callers
     from different domains (e.g. tests hammering the pool). *)
  let busy = Atomic.make false

  let handles : unit Domain.t list ref = ref []
  let spawned = ref 0
  let at_exit_registered = ref false

  let drain (j : job) =
    let rec go () =
      let i = Atomic.fetch_and_add j.next 1 in
      if i < j.n then begin
        j.task i;
        if Atomic.fetch_and_add j.pending (-1) = 1 then begin
          (* Last task of the batch: wake the caller. *)
          Mutex.lock lock;
          Condition.broadcast done_cv;
          Mutex.unlock lock
        end;
        go ()
      end
    in
    go ()

  let worker () =
    Domain.DLS.set in_worker true;
    let last = ref (-1) in
    let running = ref true in
    while !running do
      Mutex.lock lock;
      while !generation = !last && not !stop do
        Condition.wait work_cv lock
      done;
      last := !generation;
      let job = !current in
      let stopping = !stop in
      Mutex.unlock lock;
      if stopping then running := false
      else Option.iter drain job
    done

  let shutdown () =
    Mutex.lock lock;
    stop := true;
    Condition.broadcast work_cv;
    Mutex.unlock lock;
    List.iter Domain.join !handles;
    Mutex.lock lock;
    handles := [];
    spawned := 0;
    stop := false;
    Mutex.unlock lock

  (* Called with [busy] held, so no batch is racing the spawn. *)
  let ensure_workers wanted =
    if !spawned < wanted then begin
      if not !at_exit_registered then begin
        at_exit_registered := true;
        at_exit shutdown
      end;
      for _ = !spawned + 1 to wanted do
        handles := Domain.spawn worker :: !handles
      done;
      spawned := wanted
    end

  let run_seq tasks = Array.map (fun f -> f ()) tasks

  let run (type a) (tasks : (unit -> a) array) : a array =
    let n = Array.length tasks in
    if n = 0 then [||]
    else
      let p = size () in
      if
        p <= 1 || n = 1
        || Domain.DLS.get in_worker
        || not (Atomic.compare_and_set busy false true)
      then run_seq tasks
      else begin
        ensure_workers (p - 1);
        let results : a option array = Array.make n None in
        let errors : exn option array = Array.make n None in
        let task i =
          match tasks.(i) () with
          | v -> results.(i) <- Some v
          | exception e -> errors.(i) <- Some e
        in
        let job =
          { task; n; next = Atomic.make 0; pending = Atomic.make n }
        in
        Mutex.lock lock;
        current := Some job;
        incr generation;
        Condition.broadcast work_cv;
        Mutex.unlock lock;
        (* The caller drains alongside the workers. *)
        let rec go () =
          let i = Atomic.fetch_and_add job.next 1 in
          if i < job.n then begin
            task i;
            ignore (Atomic.fetch_and_add job.pending (-1));
            go ()
          end
        in
        go ();
        Mutex.lock lock;
        while Atomic.get job.pending > 0 do
          Condition.wait done_cv lock
        done;
        current := None;
        Mutex.unlock lock;
        Atomic.set busy false;
        Array.iteri
          (fun _ e -> match e with Some e -> raise e | None -> ())
          errors;
        Array.map
          (function Some v -> v | None -> assert false (* all tasks ran *))
          results
      end

  let map ?chunk f arr =
    let n = Array.length arr in
    if n = 0 then [||]
    else
      let p = size () in
      if p <= 1 || n = 1 then Array.map f arr
      else begin
        let c =
          match chunk with
          | Some c -> max 1 c
          | None -> max 1 (1 + ((n - 1) / (4 * p)))
        in
        let nchunks = (n + c - 1) / c in
        if nchunks <= 1 then Array.map f arr
        else
          let parts =
            run
              (Array.init nchunks (fun ci () ->
                   let lo = ci * c in
                   let hi = min n (lo + c) in
                   Array.init (hi - lo) (fun k -> f arr.(lo + k))))
          in
          Array.concat (Array.to_list parts)
      end

  let map_list ?chunk f l = Array.to_list (map ?chunk f (Array.of_list l))
end
