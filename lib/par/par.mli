(** A fixed-size domain pool for the decision procedures.

    The pool is the repo's one multicore primitive: a set of worker
    domains spawned once (lazily, on first parallel use) and fed batches
    of independent tasks through a shared atomic work index — workers and
    the calling domain all drain the same batch, so a batch of [n] tasks
    costs [n] fetch-and-adds, not [n] context switches.  Everything is
    stdlib-only ([Domain], [Atomic], [Mutex], [Condition]); there is no
    external dependency.

    {b Pool size.}  The size counts the calling domain, so size [p] runs
    at most [p-1] worker domains.  The default comes from the
    [PAR_DOMAINS] environment variable and falls back to [1]; size [1]
    never spawns anything and every combinator degenerates to its
    sequential equivalent on the calling domain — the byte-for-byte
    sequential code path of the pre-multicore engine.

    {b Determinism.}  All combinators return results in input order, so
    a parallel map is observationally a sequential map of a pure
    function.  Callers that need stronger guarantees (ordered effects,
    deterministic fuel accounting) run the effectful merge sequentially
    on the results — see [Witness_search] and [Ree_definability].

    {b Nesting.}  One batch runs at a time.  A [run]/[map] issued while
    another batch is active — including from inside a task — executes
    sequentially inline on the calling domain, so nested parallelism
    (e.g. a parallel kernel inside [decide_batch]) degrades gracefully
    instead of deadlocking. *)

module Pool : sig
  val size : unit -> int
  (** Configured pool size (≥ 1).  Initially the value of [PAR_DOMAINS]
      when set to a positive integer, else [1]. *)

  val set_size : int -> unit
  (** Set the pool size.  Values below [1] are clamped to [1].  Growing
      spawns the missing workers on the next parallel call; shrinking
      simply stops using the extras (idle workers cost nothing — they
      block on a condition variable). *)

  val run : (unit -> 'a) array -> 'a array
  (** Run the thunks, possibly in parallel, and return their results in
      input order.  If any task raised, the exception of the
      lowest-indexed failing task is re-raised after the whole batch has
      completed (the pool is never left with stray tasks).  Tasks must
      not themselves block on the pool. *)

  val map : ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
  (** Parallel [Array.map], chunked: the input is split into contiguous
      chunks ([chunk] elements each; default [n / (4·size)], at least 1)
      so per-task overhead amortizes over many small elements.  Results
      are in input order. *)

  val map_list : ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
  (** [map] over a list (converted through an array; order preserved). *)

  val shutdown : unit -> unit
  (** Stop and join all worker domains.  Registered [at_exit] when the
      first worker is spawned, so programs exit cleanly; safe to call
      multiple times, and the pool respawns on the next parallel call. *)
end
