(** A work-stealing domain pool for the decision procedures.

    The pool is the repo's one multicore primitive.  Since PR 9 it is
    built on per-batch Chase–Lev deques: the domain that opens a batch
    owns a deque, pushes its tasks at the bottom and pops them back LIFO,
    while worker domains steal FIFO from the top with a single CAS.
    Several batches may be in flight at once (each registered in a small
    victim table); idle workers scan the table from a randomized start
    and back off exponentially when repeated steals find nothing.
    Everything is stdlib-only ([Domain], [Atomic], [Mutex], [Condition],
    [Unix] for timestamps); there is no external dependency.

    {b Pool size.}  The size counts the calling domain, so size [p] runs
    at most [p-1] worker domains for [run]/[map] (the caller drains its
    own deque alongside the thieves) and [p] workers for [submit] (the
    submitting system thread only waits).  The default comes from the
    [PAR_DOMAINS] environment variable and falls back to [1]; size [1]
    never spawns anything and every combinator degenerates to its
    sequential equivalent on the calling domain — the byte-for-byte
    sequential code path of the pre-multicore engine.

    {b Determinism.}  All combinators return results in input order, so
    a parallel map is observationally a sequential map of a pure
    function — which tasks were stolen and in what order is invisible in
    the result.  Callers that need stronger guarantees (ordered effects,
    deterministic fuel accounting) run the effectful merge sequentially
    on the results — see [Witness_search] and [Ree_definability].

    {b Nesting.}  A [run]/[map]/[submit] issued from inside a pool
    worker executes sequentially inline on that worker (counted by the
    [pool.nested_inline] obs counter) rather than publishing a nested
    batch, so nested parallelism (e.g. a parallel kernel inside
    [decide_batch]) degrades gracefully instead of deadlocking.  Kernels
    can ask [Pool.in_pool] to decline speculative fan-out up front.
    Batches opened by distinct non-worker threads are independent and
    genuinely concurrent. *)

module Deque : sig
  (** Single-owner Chase–Lev work-stealing deque.

      The owner pushes and pops at the {e bottom} (LIFO); any number of
      thieves steal from the {e top} (FIFO) racing each other and the
      owner through a CAS on the top index.  All cells and indices are
      [Atomic] so the implementation is sequentially consistent under
      the OCaml 5 memory model; the buffer grows (owner-side only) by
      doubling, and stale thieves that read a pre-growth buffer are
      safe because live cells are never moved, only copied. *)

  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  (** Fresh empty deque.  [capacity] (default 64) is rounded up to a
      power of two; the deque grows on demand, so this is a hint. *)

  val push : 'a t -> 'a -> unit
  (** Owner only: push at the bottom. *)

  val pop : 'a t -> 'a option
  (** Owner only: pop the most recently pushed element (LIFO).  [None]
      when empty or when a thief won the race for the last element. *)

  val steal : 'a t -> [ `Stolen of 'a | `Empty | `Retry ]
  (** Thief: steal the oldest element (FIFO).  [`Retry] means the CAS
      was lost to the owner or another thief — the deque may still be
      non-empty, try again. *)

  val length : 'a t -> int
  (** Snapshot of [bottom - top] (clamped at 0); racy, advisory only. *)
end

module Pool : sig
  val size : unit -> int
  (** Configured pool size (≥ 1).  Initially the value of [PAR_DOMAINS]
      when set to a positive integer, else [1]. *)

  val set_size : int -> unit
  (** Set the pool size.  Values below [1] are clamped to [1].  Growing
      spawns the missing workers on the next parallel call; shrinking
      simply stops using the extras (idle workers cost nothing — they
      back off to a condition variable). *)

  val in_pool : unit -> bool
  (** [true] iff the calling domain is a pool worker, i.e. the current
      code is already executing a pool task.  Kernels use this to
      decline to sub-split: a nested [run] would inline anyway (see
      {e Nesting} above), so speculative parallel shapes — which trade
      redundant work for latency — should fall back to their sequential
      form when this returns [true]. *)

  val run : (unit -> 'a) array -> 'a array
  (** Run the thunks, possibly in parallel, and return their results in
      input order.  The calling domain pushes all tasks onto a fresh
      deque, drains it LIFO, and waits for stolen stragglers.  If any
      task raised, the exception of the lowest-indexed failing task is
      re-raised after the whole batch has completed (the pool is never
      left with stray tasks).  Tasks must not themselves block on the
      pool. *)

  val map : ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
  (** Parallel [Array.map], chunked: the input is split into contiguous
      chunks ([chunk] elements each; default [n / (4·size)], at least 1)
      so per-task overhead amortizes over many small elements.  Results
      are in input order. *)

  val map_list : ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
  (** [map] over a list (converted through an array; order preserved). *)

  val submit : (unit -> 'a) array -> ('a array, [ `Queue_full ]) result
  (** External submission path, used by the service layer: the batch is
      executed {e entirely by pool workers} — the calling (system)
      thread does not participate, it only blocks until completion, so
      every task of an admitted submission is a steal.  Admission is
      bounded: if the backlog of submitted-but-not-yet-started tasks has
      reached [submission_bound] the call is rejected immediately with
      [Error `Queue_full] (an oversized batch is admitted whenever there
      is {e any} room, so a single submission larger than the bound is
      not wedged forever; the backlog can thus transiently overshoot by
      one batch).  At pool size 1 — no workers — the tasks run inline on
      the caller and the bound does not apply.  Results, exceptions and
      ordering follow the [run] contract.  Per-task queue wait (submit →
      execution start) is recorded in the [pool.queue_wait] histogram. *)

  val submission_bound : unit -> int
  (** Current backlog bound for [submit] (default 32). *)

  val set_submission_bound : int -> unit
  (** Set the backlog bound (clamped at ≥ 0; [0] rejects every
      submission).  Process-global, like the pool itself. *)

  val stats : unit -> (string * int) list
  (** Always-on pool tallies, independent of whether the obs plane is
      enabled: [size], [workers], [deque_push], [deque_pop] (owner-side
      LIFO pops), [steal_success], [steal_fail] (lost CAS races),
      [nested_inline], [submitted], [submit_rejected], [submit_backlog],
      [queue_wait_count], [queue_wait_us_total], [queue_wait_us_max].
      Sorted by key.  The same signals are mirrored into [Obs] counters
      ([steal.success], [steal.fail], [deque.push], [deque.pop],
      [pool.nested_inline]) and the [pool.queue_wait] histogram when
      telemetry is enabled, so they also reach the Prometheus [metrics]
      exposition. *)

  val shutdown : unit -> unit
  (** Stop and join all worker domains.  Registered [at_exit] when the
      first worker is spawned, so programs exit cleanly; safe to call
      multiple times, and the pool respawns on the next parallel call. *)
end
