module Relation = Datagraph.Relation
module Query = Query_lang.Query

type 'q verified = {
  query : 'q;
  evaluated : Relation.t;
  correct : bool;
}

let verify g s expr =
  let evaluated = Query.eval g expr in
  (evaluated, Relation.equal evaluated s)

(* Synthesis wants a yes/no, so a truncated search is an error here —
   the caller asked for a query, not a maybe. *)
let decided (o : Witness_search.outcome) =
  match o.verdict with
  | Witness_search.Definable -> true
  | Witness_search.Not_definable _ -> false
  | Witness_search.Exhausted ->
      failwith "definability search truncated; raise max_tuples"

let rpq ?max_tuples g s =
  let o = Rpq_definability.search ?max_tuples g s in
  if not (decided o) then None
  else
    let query = Regexp.Regex.simplify (Rpq_definability.query_of_witnesses o.witnesses) in
    let evaluated, correct = verify g s (Query.Rpq query) in
    Some { query; evaluated; correct }

let rem ?max_tuples g s =
  let pg = Profile_graph.create g in
  let o = Witness_search.search ?max_tuples (Profile_graph.config pg) ~target:s in
  if not (decided o) then None
  else
    let query =
      Rem_lang.Rem.simplify (Rem_definability.query_of_witnesses pg o.witnesses)
    in
    let evaluated, correct = verify g s (Query.Rem query) in
    Some { query; evaluated; correct }

let rem_k ?max_tuples g ~k s =
  let ag = Assignment_graph.create g ~k in
  let o =
    Witness_search.search ?max_tuples (Assignment_graph.config ag) ~target:s
  in
  if not (decided o) then None
  else
    let query =
      Rem_lang.Rem.simplify (Rem_definability.query_of_witnesses_k ag o.witnesses)
    in
    let evaluated, correct = verify g s (Query.Rem query) in
    Some { query; evaluated; correct }

let ree ?max_size g s =
  let r = Ree_definability.search ?max_size g s in
  match Ree_definability.verdict r with
  | None -> failwith "REE closure truncated; raise max_size"
  | Some false -> None
  | Some true ->
      let query =
        Ree_lang.Ree.simplify (Ree_definability.query_of_witnesses r.witnesses)
      in
      let evaluated, correct = verify g s (Query.Ree query) in
      Some { query; evaluated; correct }
