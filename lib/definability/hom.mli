(** Data graph homomorphisms (Definition 33): mappings [h : V → V] such
    that

    + (single step compatibility) [p -a-> q] implies [h(p) -a-> h(q)], and
    + (data compatibility of reachable nodes) whenever [q] is reachable
      from [p], [ρ(p) = ρ(q) ⇔ ρ(h(p)) = ρ(h(q))].

    Lemma 34: a relation is UCRDPQ-definable iff it is preserved by every
    data graph homomorphism.

    Both conditions are binary constraints over node images, so the
    searches below run as a CSP: AC-3 arc consistency over the edge and
    data constraints, then backtracking on the smallest domain.  The
    violation search additionally prunes subtrees in which every tuple of
    the target relation can only land inside the relation — without this,
    deciding preservation would enumerate all homomorphisms, of which
    even small instances have exponentially many. *)

type t = int array
(** [h.(p)] is the image of node [p]. *)

val is_hom : Datagraph.Data_graph.t -> t -> bool

val identity : Datagraph.Data_graph.t -> t

type csp_handle
(** The compiled constraint system of a graph — a pure function of the
    graph, exposed so callers (e.g. {!Engine.Instance} memo slots) can
    build it once and reuse it across many relation checks. *)

val csp_of : Datagraph.Data_graph.t -> csp_handle

type violation_outcome = {
  result : [ `Preserved | `Violation of t * int list | `Budget_exhausted ];
      (** [`Violation (h, p)]: homomorphism [h] and a tuple [p ∈ S] with
          [h(p) ∉ S] *)
  nodes_explored : int;  (** backtracking nodes visited *)
}

val search_violating :
  ?budget:Engine.Budget.t ->
  ?csp:csp_handle ->
  Datagraph.Data_graph.t ->
  Datagraph.Tuple_relation.t ->
  violation_outcome
(** Budgeted preservation check: each backtracking node consumes one step
    of [budget]; exhaustion aborts with [`Budget_exhausted]. *)

val find_violating :
  Datagraph.Data_graph.t -> Datagraph.Tuple_relation.t -> t option
(** A homomorphism [h] with [h(p) ∉ S] for some tuple [p ∈ S], if any —
    a certificate of non-UCRDPQ-definability.  Unbudgeted wrapper around
    {!search_violating}. *)

val count : ?limit:int -> Datagraph.Data_graph.t -> int
(** Number of data graph homomorphisms, counting at most [limit]
    (default [1_000_000]) — a statistic for the benchmarks. *)

val all : ?limit:int -> Datagraph.Data_graph.t -> t list
(** All data graph homomorphisms (at most [limit], default [100_000]).
    Shared precomputation for {!Census}: preservation of any relation can
    then be checked against the list directly. *)

val pp : Datagraph.Data_graph.t -> Format.formatter -> t -> unit
