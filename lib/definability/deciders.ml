module Budget = Engine.Budget
module Instance = Engine.Instance
module Outcome = Engine.Outcome
module Registry = Engine.Registry
module WS = Witness_search
module Regex = Regexp.Regex
module Rem = Rem_lang.Rem
module Ree = Ree_lang.Ree

let now () = Unix.gettimeofday ()

let unsupported lang inst =
  Outcome.make ~steps:0 ~elapsed_s:0.
    (Outcome.Unknown
       (Outcome.Unsupported
          (Printf.sprintf "%s decides binary relations only; instance has arity %d"
             lang (Instance.arity inst))))

let with_binary lang inst f =
  match Instance.binary inst with
  | None -> unsupported lang inst
  | Some s -> f (Instance.graph inst) s

(* Witness-search outcome → engine outcome.  [decode] synthesizes the
   certificate from the witnesses of the same search pass — no second
   search. *)
let of_witness_outcome ~decode ~elapsed_s (o : WS.outcome) =
  let verdict =
    match o.verdict with
    | WS.Definable -> Outcome.Definable (decode o.witnesses)
    | WS.Not_definable missing ->
        Outcome.Not_definable (Outcome.Missing_pairs missing)
    | WS.Exhausted -> Outcome.Unknown Outcome.Budget_exhausted
  in
  Outcome.make ~steps:o.tuples_explored ~elapsed_s verdict

let rpq_decide ?budget ?params:_ inst =
  with_binary "rpq" inst (fun g s ->
      let t0 = now () in
      let o = Rpq_definability.search ?budget g s in
      of_witness_outcome o ~elapsed_s:(now () -. t0) ~decode:(fun ws ->
          Outcome.Rpq (Regex.simplify (Rpq_definability.query_of_witnesses ws))))

(* The profile automaton is a pure function of the graph — memoized on
   the instance so repeated dispatches (bench loops, cert re-checks)
   build it once. *)
let pg_key : Profile_graph.t Instance.key = Instance.new_key ()

let rem_decide ?budget ?params:_ inst =
  with_binary "rem" inst (fun _g s ->
      let t0 = now () in
      let pg =
        Instance.memo inst pg_key (fun i ->
            Obs.Span.with_ "profile_graph.build" (fun () ->
                Profile_graph.create (Instance.graph i)))
      in
      let o = WS.search ?budget (Profile_graph.config pg) ~target:s in
      of_witness_outcome o ~elapsed_s:(now () -. t0) ~decode:(fun ws ->
          Outcome.Rem
            (Rem.simplify (Rem_definability.query_of_witnesses pg ws))))

let krem_decide ?budget ?(params = Registry.default_params) inst =
  with_binary "krem" inst (fun g s ->
      let t0 = now () in
      let ag =
        Obs.Span.with_ "assignment_graph.build" (fun () ->
            Assignment_graph.create g ~k:params.Registry.k)
      in
      let o = WS.search ?budget (Assignment_graph.config ag) ~target:s in
      of_witness_outcome o ~elapsed_s:(now () -. t0) ~decode:(fun ws ->
          Outcome.Rem
            (Rem.simplify (Rem_definability.query_of_witnesses_k ag ws))))

let ree_decide ?budget ?params:_ inst =
  with_binary "ree" inst (fun g s ->
      let t0 = now () in
      let r = Ree_definability.search ?budget g s in
      let elapsed_s = now () -. t0 in
      let verdict =
        if r.Ree_definability.missing = [] then
          Outcome.Definable
            (Outcome.Ree
               (Ree.simplify (Ree_definability.query_of_witnesses r.witnesses)))
        else if r.truncated then Outcome.Unknown Outcome.Budget_exhausted
        else Outcome.Not_definable (Outcome.Missing_pairs r.missing)
      in
      Outcome.make ~steps:r.closure_size ~elapsed_s
        ~extras:
          [ ("closure_size", r.closure_size); ("max_height", r.max_height) ]
        verdict)

let csp_key : Hom.csp_handle Instance.key = Instance.new_key ()

let ucrdpq_decide ?budget ?params:_ inst =
  let g = Instance.graph inst in
  let s = Instance.relation inst in
  let t0 = now () in
  let csp = Instance.memo inst csp_key (fun i -> Hom.csp_of (Instance.graph i)) in
  let o =
    Obs.Span.with_ "ucrdpq.containment" (fun () ->
        Hom.search_violating ?budget ~csp g s)
  in
  let verdict =
    match o.Hom.result with
    | `Preserved ->
        Outcome.Definable
          (Outcome.Ucrdpq (Ucrdpq_definability.canonical_query g s))
    | `Violation (h, tup) ->
        Outcome.Not_definable (Outcome.Violating_hom { hom = h; tuple = tup })
    | `Budget_exhausted -> Outcome.Unknown Outcome.Budget_exhausted
  in
  Outcome.make ~steps:o.nodes_explored ~elapsed_s:(now () -. t0) verdict

let init () =
  Registry.register
    { lang = "rpq"; doc = "regular path queries (data-free baseline of [3])";
      decide = rpq_decide };
  Registry.register
    { lang = "krem";
      doc = "REMs with k registers (Theorem 22; k from params, default 1)";
      decide = krem_decide };
  Registry.register
    { lang = "rem"; doc = "REMs, unbounded registers (Theorem 24)";
      decide = rem_decide };
  Registry.register
    { lang = "ree"; doc = "regular expressions with equality (Theorem 32)";
      decide = ree_decide };
  Registry.register
    { lang = "ucrdpq";
      doc = "unions of conjunctive RDPQs, any arity (Theorem 35)";
      decide = ucrdpq_decide }
