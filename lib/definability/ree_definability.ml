module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation
module Ree = Ree_lang.Ree
module Ree_term = Ree_lang.Ree_term
module Budget = Engine.Budget

let log_src =
  Logs.Src.create "definability.ree" ~doc:"REE closure computation"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Rel_tbl = Hashtbl.Make (struct
  type t = Relation.t

  let equal = Relation.equal
  let hash = Relation.hash
end)

type search = {
  witnesses : ((int * int) * Ree_term.t) list;
  missing : (int * int) list;
  truncated : bool;
  closure_size : int;
  max_height : int;
}

let closure ?(max_size = 200_000) g =
  let value = Data_graph.value g in
  let tbl : Ree_term.t Rel_tbl.t = Rel_tbl.create 1024 in
  let order = ref [] in
  let queue = Queue.create () in
  let truncated = ref false in
  let add rel term =
    if not (Rel_tbl.mem tbl rel) then begin
      if Rel_tbl.length tbl >= max_size then truncated := true
      else begin
        Rel_tbl.add tbl rel term;
        order := (rel, term) :: !order;
        Queue.add (rel, term) queue
      end
    end
  in
  add (Relation.identity (Data_graph.size g)) Ree_term.Eps;
  List.iter
    (fun a -> add (Relation.edge_relation g a) (Ree_term.Letter a))
    (Data_graph.alphabet g);
  while not (Queue.is_empty queue) do
    let r, t = Queue.pop queue in
    add (Relation.restrict_eq ~value r) (Ree_term.EqTest t);
    add (Relation.restrict_neq ~value r) (Ree_term.NeqTest t);
    (* Compose with everything known so far, both ways.  The snapshot
       excludes relations added later in this pop, but those will compose
       with [r] when they are popped themselves. *)
    let snapshot = !order in
    List.iter
      (fun (x, tx) ->
        add (Relation.compose r x) (Ree_term.Concat (t, tx));
        add (Relation.compose x r) (Ree_term.Concat (tx, t)))
      snapshot
  done;
  (List.rev !order, !truncated)

(* Like [closure], but checks coverage of [s] incrementally and stops as
   soon as every pair has a witness — the common case for definable
   relations, where materializing the whole closure would be wasteful. *)
let search ?budget ?(max_size = 200_000) g s =
  Obs.Span.with_ "ree.closure" @@ fun () ->
  let value = Data_graph.value g in
  let take () = match budget with None -> true | Some b -> Budget.take b in
  let budget_dead () =
    match budget with None -> false | Some b -> Budget.exhausted b
  in
  let tbl : Ree_term.t Rel_tbl.t = Rel_tbl.create 1024 in
  let order = ref [] in
  let queue = Queue.create () in
  let truncated = ref false in
  let max_height = ref 0 in
  let witnesses : (int * int, Ree_term.t) Hashtbl.t = Hashtbl.create 16 in
  let remaining = ref (Relation.cardinal s) in
  let note rel term =
    if !remaining > 0 && Relation.subset rel s then
      Relation.iter
        (fun u v ->
          if not (Hashtbl.mem witnesses (u, v)) then begin
            Hashtbl.add witnesses (u, v) term;
            decr remaining
          end)
        rel
  in
  let add rel term =
    if !remaining > 0 && not (Rel_tbl.mem tbl rel) then begin
      if Rel_tbl.length tbl >= max_size || not (take ()) then
        truncated := true
      else begin
        Rel_tbl.add tbl rel term;
        max_height := max !max_height (Ree_term.height term);
        order := (rel, term) :: !order;
        Queue.add (rel, term) queue;
        note rel term
      end
    end
  in
  add (Relation.identity (Data_graph.size g)) Ree_term.Eps;
  List.iter
    (fun a -> add (Relation.edge_relation g a) (Ree_term.Letter a))
    (Data_graph.alphabet g);
  (* Below this snapshot size the compose products are cheaper than the
     cost of fanning a batch out to the pool. *)
  let par_threshold = 8 in
  while !remaining > 0 && (not (Queue.is_empty queue)) && not (budget_dead ())
  do
    let r, t = Queue.pop queue in
    add (Relation.restrict_eq ~value r) (Ree_term.EqTest t);
    add (Relation.restrict_neq ~value r) (Ree_term.NeqTest t);
    let snapshot = !order in
    if
      Par.Pool.size () > 1
      && (not (Par.Pool.in_pool ()))
      && List.length snapshot >= par_threshold
    then begin
      (* Saturation step, parallel form.  The compose products are pure
         functions of [r] and the snapshot (relations are immutable), so
         they fan out across the domain pool; the [add]s — dedup,
         fuel, coverage, queue order — then replay sequentially in the
         exact order of the one-domain loop, keeping the closure
         front, fuel consumption and witness choice byte-identical at
         every pool size. *)
      let pairs =
        Par.Pool.map_list
          (fun (x, tx) ->
            ( (Relation.compose r x, Ree_term.Concat (t, tx)),
              (Relation.compose x r, Ree_term.Concat (tx, t)) ))
          snapshot
      in
      List.iter
        (fun ((c1, t1), (c2, t2)) ->
          add c1 t1;
          add c2 t2)
        pairs
    end
    else
      List.iter
        (fun (x, tx) ->
          add (Relation.compose r x) (Ree_term.Concat (t, tx));
          add (Relation.compose x r) (Ree_term.Concat (tx, t)))
        snapshot
  done;
  if budget_dead () then truncated := true;
  let witnesses_list =
    List.sort compare
      (Hashtbl.fold (fun pair t acc -> (pair, t) :: acc) witnesses [])
  in
  let missing =
    Relation.fold
      (fun u v acc -> if Hashtbl.mem witnesses (u, v) then acc else (u, v) :: acc)
      s []
    |> List.rev
  in
  Log.debug (fun m ->
      m "explored %d relations (max height %d)%s" (Rel_tbl.length tbl)
        !max_height
        (if !truncated then " (truncated)" else ""));
  {
    witnesses = witnesses_list;
    missing;
    truncated = !truncated;
    closure_size = Rel_tbl.length tbl;
    max_height = !max_height;
  }

let verdict r =
  if r.missing = [] then Some true
  else if r.truncated then None
  else Some false

(* An REE with empty language: a single data value never differs from
   itself, so L(ε≠) = ∅. *)
let empty_ree = Ree.NeqTest Ree.Eps

let union_ree = function
  | [] -> empty_ree
  | e :: rest -> List.fold_left (fun acc x -> Ree.Union (acc, x)) e rest

let query_of_witnesses witnesses =
  let terms = List.sort_uniq compare (List.map snd witnesses) in
  union_ree (List.map Ree_term.to_ree terms)
