(** The five deciders of the paper behind the uniform
    {!Engine.Registry.decide} signature:

    - ["rpq"] — witness search over the graph itself
      ({!Rpq_definability});
    - ["krem"] — witness search over the k-assignment graph, [k] from
      {!Engine.Registry.params} ({!Rem_definability.search_k});
    - ["rem"] — witness search over the profile automaton
      ({!Rem_definability.search});
    - ["ree"] — incremental closure exploration
      ({!Ree_definability.search});
    - ["ucrdpq"] — violating-homomorphism CSP search
      ({!Hom.search_violating}), the only decider accepting arities
      other than 2.

    Each decider threads the {!Engine.Budget} into its kernel, reports
    exhaustion as [Unknown Budget_exhausted], and synthesizes its
    certificate from the same search pass that proved definability.
    Per-instance structures (the profile automaton, the homomorphism
    CSP) are memoized through {!Engine.Instance.memo}. *)

val init : unit -> unit
(** Register all five deciders.  Idempotent; applications call this once
    before dispatching through {!Engine.Registry}. *)
