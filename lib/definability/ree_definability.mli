(** RDPQ_=-definability (Section 4) — PSpace-complete (Theorem 32).

    The decision procedure follows the paper's level hierarchy
    (Definition 27) in its union-free skeleton: compute the closure of
    the base relations [S_ε] and [S_a] under composition and the
    [=]/[≠]-restrictions, each closure element carrying a star-free
    union-free witness term ({!Ree_lang.Ree_term}).  Unions are only
    needed at the outermost level (they distribute over concatenation and
    the restrictions, and witnesses survive unfolding of [e⁺]), so:

    [S] is RDPQ_=-definable iff every pair [(u,v) ∈ S] lies in some
    closure element [R ⊆ S] — and then the union of the witness terms
    defines [S].

    The paper's Lemma 28 bounds the hierarchy height by [n²]; the
    [max_height] statistic lets the test suite check this invariant.
    (The paper trades this exponential-sized closure for a
    nondeterministic polynomial-space guess of one branch; deterministic
    memoized exploration is the Savitch-style equivalent.)

    The uniform result type lives in {!Engine.Outcome}; dispatch through
    {!Engine.Registry} (language ["ree"], registered by {!Deciders}).
    This module keeps the raw closure search and the witness → REE
    decoding; direct callers read {!verdict} off the {!search} result. *)

type search = {
  witnesses : ((int * int) * Ree_lang.Ree_term.t) list;
      (** per covered pair, a witness term [t] with [(u,v) ∈ S_t ⊆ S] *)
  missing : (int * int) list;
      (** pairs of [S] left without a witness; nonempty + [truncated]
          means undecided, nonempty + not [truncated] means not
          definable *)
  truncated : bool;
      (** the closure exploration hit [max_size] or ran out of budget *)
  closure_size : int;
      (** relations explored before deciding — the full closure only when
          the search could not stop early *)
  max_height : int;  (** largest restriction nesting depth explored *)
}

val closure :
  ?max_size:int ->
  Datagraph.Data_graph.t ->
  (Datagraph.Relation.t * Ree_lang.Ree_term.t) list * bool
(** All term-definable relations on the graph with one witness term each,
    and whether the closure was truncated at [max_size] (default
    [200_000]). *)

val search :
  ?budget:Engine.Budget.t ->
  ?max_size:int ->
  Datagraph.Data_graph.t ->
  Datagraph.Relation.t ->
  search
(** Decide definability, exploring the closure incrementally and stopping
    as soon as every pair of the relation has a witness.  [max_size]
    (default [200_000]) bounds the explored relation count; each newly
    admitted closure element additionally consumes one step of [budget],
    and fuel or deadline exhaustion marks the result [truncated]. *)

val verdict : search -> bool option
(** [Some b] when the search decided, [None] when it was truncated before
    covering the relation. *)

val empty_ree : Ree_lang.Ree.t
(** An REE with empty language ([ε≠]) — defines ∅. *)

val union_ree : Ree_lang.Ree.t list -> Ree_lang.Ree.t
(** n-ary union; {!empty_ree} for the empty list. *)

val query_of_witnesses :
  ((int * int) * Ree_lang.Ree_term.t) list -> Ree_lang.Ree.t
(** The union of the (deduplicated) witness terms. *)
