module Data_graph = Datagraph.Data_graph
module Tuple_relation = Datagraph.Tuple_relation
module Bitset = Util.Bitset
module Bitmatrix = Util.Bitmatrix

type t = int array

let is_hom g h =
  let n = Data_graph.size g in
  Array.length h = n
  && Array.for_all (fun x -> x >= 0 && x < n) h
  && List.for_all
       (fun (p, a, q) -> Data_graph.mem_edge g h.(p) a h.(q))
       (Data_graph.edges g)
  &&
  let reach = Data_graph.reachability_matrix g in
  let ok = ref true in
  for p = 0 to n - 1 do
    for q = 0 to n - 1 do
      if Bitmatrix.get reach p q then
        if Data_graph.same_value g p q <> Data_graph.same_value g h.(p) h.(q)
        then ok := false
    done
  done;
  !ok

let identity g = Array.init (Data_graph.size g) Fun.id

(* ------------------------------------------------------------------ *)
(* CSP machinery.  Domains are bitsets with a maintained cardinality;
   constraints are the edge constraints (h(u),h(v)) ∈ E_a and the data
   constraints same_value(h(p),h(q)) = same_value(p,q) for reachable
   (p,q).  Both are binary, so AC-3 applies uniformly.  A support check
   is one word-parallel row-AND ([Bitset.disjoint] of a constraint row
   with the neighbour domain), and every domain removal is recorded on
   a trail so backtracking undoes exactly the removals of the abandoned
   subtree instead of copying all domains at every branch node.         *)

type domain = { bits : Bitset.t; mutable card : int }

type csp = {
  n : int;
  (* Binary constraints as (u, v, allowed, allowedᵀ); rows of [allowed]
     index u-values, rows of the transpose index v-values.  The data
     constraints all share two matrices (same-value / distinct-value),
     which are symmetric and hence self-transposed. *)
  constraints : (int * int * Bitmatrix.t * Bitmatrix.t) array;
  (* For each variable, indices of constraints mentioning it. *)
  incident : int list array;
  (* Root domains after the initial arc-consistency pass — a pure
     function of the CSP, computed once and copied into each search.
     [Root_unknown] = not yet computed; [Root_wiped] = wiped out (no
     solutions at all); [Root_doms] = the arc-consistent template.
     Atomic because a CSP handle is shared across domains (the cache
     below is keyed by graph uid): racing domains compute identical
     templates and the CAS loser adopts the winner's, which publishes
     the template's bitsets with a proper happens-before edge. *)
  root : root Atomic.t;
}

and root = Root_unknown | Root_wiped | Root_doms of domain array

type state = {
  doms : domain array;
  (* Removals, packed as var * n + value. *)
  mutable trail : int array;
  mutable trail_len : int;
  (* AC-3 worklist, shared across all branch nodes of one search.  The
     drain loop restores [enqueued] to all-false before returning (or on
     Wipeout), so no per-propagation allocation is needed. *)
  mutable work : int array;
  mutable work_len : int;
  enqueued : bool array;
}

let build_csp_uncached g =
  let n = Data_graph.size g in
  let reach = Data_graph.reachability_matrix g in
  let constraints = ref [] in
  (* One constraint per (u, v) edge pair; edges with the same endpoints
     conjoin into a single table by intersecting adjacency matrices. *)
  let edge_tbl : (int * int, Bitmatrix.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (u, a, v) ->
      let adj = Data_graph.adjacency_matrix g (Data_graph.label_id g a) in
      match Hashtbl.find_opt edge_tbl (u, v) with
      | Some m -> Bitmatrix.inter_inplace m adj
      | None -> Hashtbl.add edge_tbl (u, v) (Bitmatrix.copy adj))
    (Data_graph.edges g);
  (* Data compatibility for reachable pairs (skip trivial p = q).  All
     standalone data constraints share the two matrices below. *)
  let same = Bitmatrix.create n n in
  let diff = Bitmatrix.create n n in
  for x = 0 to n - 1 do
    for y = 0 to n - 1 do
      if Data_graph.same_value g x y then Bitmatrix.set same x y
      else Bitmatrix.set diff x y
    done
  done;
  (* The data matrices are symmetric and [revise] works both directions,
     so one constraint per unordered pair {p, q} suffices; and when the
     pair also carries an edge constraint, intersect the data matrix into
     it instead of adding a second constraint on the same pair. *)
  for p = 0 to n - 1 do
    for q = p + 1 to n - 1 do
      if Bitmatrix.get reach p q || Bitmatrix.get reach q p then begin
        let m = if Data_graph.same_value g p q then same else diff in
        let merged = ref false in
        List.iter
          (fun key ->
            match Hashtbl.find_opt edge_tbl key with
            | Some em ->
                Bitmatrix.inter_inplace em m;
                merged := true
            | None -> ())
          [ (p, q); (q, p) ];
        if not !merged then constraints := (p, q, m, m) :: !constraints
      end
    done
  done;
  Hashtbl.iter
    (fun (u, v) m ->
      constraints := (u, v, m, Bitmatrix.transpose m) :: !constraints)
    edge_tbl;
  (* A constraint whose matrix is all-true (every row full) can never
     prune a value; revising it on every propagation is pure waste.  In
     particular, on a single-valued graph the [same] matrix is full and
     every reachable pair's data constraint drops out here. *)
  let never_prunes (_, _, m, _) =
    let full = ref true in
    for x = 0 to n - 1 do
      if Bitset.cardinal (Bitmatrix.row m x) <> n then full := false
    done;
    !full
  in
  let constraints =
    Array.of_list (List.filter (fun c -> not (never_prunes c)) !constraints)
  in
  let incident = Array.make n [] in
  Array.iteri
    (fun ci (u, v, _, _) ->
      incident.(u) <- ci :: incident.(u);
      if v <> u then incident.(v) <- ci :: incident.(v))
    constraints;
  { n; constraints; incident; root = Atomic.make Root_unknown }

(* The CSP is a pure function of the (immutable) graph; remember the
   most recent ones so repeated searches on the same graphs — the
   census, the benchmarks, any preservation check over many relations —
   build each once.  The cache is a small move-to-front list rather than
   a single slot: deciding two graphs alternately (e.g. comparing a
   graph against a rewritten variant) must not rebuild the network on
   every call.  Eviction drops the least recently used entry.

   The cache is global mutable state probed from every domain that runs
   a hom search ([decide_batch] fans ucrdpq instances across the pool),
   so probes and insertions hold [csp_cache_lock]; the build itself runs
   outside the lock (it can take milliseconds on bigger graphs) with a
   re-check before insertion, adopting a racing winner's CSP so all
   domains share one root-domain template per graph. *)
let csp_cache_capacity = 8
let csp_cache : (int * csp) list ref = ref []
let csp_cache_lock = Mutex.create ()

let c_csp_hits = Obs.Counter.make "hom.csp_cache_hits"
let c_csp_misses = Obs.Counter.make "hom.csp_cache_misses"
let c_root_hits = Obs.Counter.make "hom.root_domain_hits"
let c_root_misses = Obs.Counter.make "hom.root_domain_misses"

let csp_cache_probe uid =
  let rec extract acc = function
    | [] -> None
    | (u, csp) :: rest when u = uid -> Some (csp, List.rev_append acc rest)
    | e :: rest -> extract (e :: acc) rest
  in
  Mutex.lock csp_cache_lock;
  let r =
    match extract [] !csp_cache with
    | Some (csp, rest) ->
        csp_cache := (uid, csp) :: rest;
        Some csp
    | None -> None
  in
  Mutex.unlock csp_cache_lock;
  r

let csp_cache_insert uid csp =
  Mutex.lock csp_cache_lock;
  let r =
    (* Another domain may have built and inserted the same graph's CSP
       while we were building; keep the incumbent (its root template may
       already be populated). *)
    match List.assoc_opt uid !csp_cache with
    | Some incumbent -> incumbent
    | None ->
        let entries = (uid, csp) :: !csp_cache in
        csp_cache :=
          (if List.length entries > csp_cache_capacity then
             List.filteri (fun i _ -> i < csp_cache_capacity) entries
           else entries);
        csp
  in
  Mutex.unlock csp_cache_lock;
  r

let build_csp g =
  let uid = Data_graph.uid g in
  match csp_cache_probe uid with
  | Some csp ->
      Obs.Counter.incr c_csp_hits;
      csp
  | None ->
      Obs.Counter.incr c_csp_misses;
      let csp = Obs.Span.with_ "csp.build" (fun () -> build_csp_uncached g) in
      csp_cache_insert uid csp

exception Wipeout

let fresh_state csp doms =
  {
    doms;
    trail = Array.make (max 16 (4 * csp.n)) 0;
    trail_len = 0;
    work = Array.make (max 16 (Array.length csp.constraints)) 0;
    work_len = 0;
    enqueued = Array.make (Array.length csp.constraints) false;
  }

let trail_push st e =
  if st.trail_len >= Array.length st.trail then begin
    let t = Array.make (2 * Array.length st.trail) 0 in
    Array.blit st.trail 0 t 0 st.trail_len;
    st.trail <- t
  end;
  st.trail.(st.trail_len) <- e;
  st.trail_len <- st.trail_len + 1

let dom_remove csp st var x =
  let d = st.doms.(var) in
  if Bitset.mem d.bits x then begin
    Bitset.remove d.bits x;
    d.card <- d.card - 1;
    trail_push st ((var * csp.n) + x)
  end

let undo_to csp st mark =
  while st.trail_len > mark do
    st.trail_len <- st.trail_len - 1;
    let e = st.trail.(st.trail_len) in
    let d = st.doms.(e / csp.n) in
    Bitset.add d.bits (e mod csp.n);
    d.card <- d.card + 1
  done

(* Revise both sides of constraint [ci]; reports which sides shrank, or
   raises [Wipeout]. *)
let revise csp st ci =
  let u, v, m, mt = csp.constraints.(ci) in
  let du = st.doms.(u) and dv = st.doms.(v) in
  let changed_u = ref false and changed_v = ref false in
  Bitset.iter
    (fun x ->
      if Bitset.disjoint (Bitmatrix.row m x) dv.bits then begin
        dom_remove csp st u x;
        changed_u := true
      end)
    du.bits;
  Bitset.iter
    (fun y ->
      if Bitset.disjoint (Bitmatrix.row mt y) du.bits then begin
        dom_remove csp st v y;
        changed_v := true
      end)
    dv.bits;
  if du.card = 0 || dv.card = 0 then raise Wipeout;
  (u, !changed_u, v, !changed_v)

let push_work st ci =
  if not st.enqueued.(ci) then begin
    st.enqueued.(ci) <- true;
    if st.work_len >= Array.length st.work then begin
      let w = Array.make (2 * Array.length st.work) 0 in
      Array.blit st.work 0 w 0 st.work_len;
      st.work <- w
    end;
    st.work.(st.work_len) <- ci;
    st.work_len <- st.work_len + 1
  end

let propagate csp st dirty =
  List.iter (fun v -> List.iter (push_work st) csp.incident.(v)) dirty;
  try
    while st.work_len > 0 do
      st.work_len <- st.work_len - 1;
      let ci = st.work.(st.work_len) in
      st.enqueued.(ci) <- false;
      let u, cu, v, cv = revise csp st ci in
      if cu then List.iter (push_work st) csp.incident.(u);
      if cv then List.iter (push_work st) csp.incident.(v)
    done
  with Wipeout ->
    (* Restore the worklist invariant before unwinding. *)
    while st.work_len > 0 do
      st.work_len <- st.work_len - 1;
      st.enqueued.(st.work.(st.work_len)) <- false
    done;
    raise Wipeout

let dom_first d =
  match Bitset.first d.bits with
  | Some x -> x
  | None -> raise Wipeout

(* Arc-consistent root domains: a pure function of the CSP, so computed
   once and copied into each search instead of re-propagating all
   constraints from full domains on every call.  Racing domains both
   propagate (identical fixpoint) and the CAS loser adopts the winner's
   template; the template itself is never mutated — searches copy it. *)
let root_doms csp =
  match Atomic.get csp.root with
  | Root_doms doms ->
      Obs.Counter.incr c_root_hits;
      Some doms
  | Root_wiped ->
      Obs.Counter.incr c_root_hits;
      None
  | Root_unknown -> (
      Obs.Counter.incr c_root_misses;
      let doms =
        Array.init csp.n (fun _ -> { bits = Bitset.full csp.n; card = csp.n })
      in
      let st = fresh_state csp doms in
      let r =
        try
          propagate csp st (List.init csp.n Fun.id);
          Root_doms doms
        with Wipeout -> Root_wiped
      in
      if Atomic.compare_and_set csp.root Root_unknown r then
        match r with Root_doms d -> Some d | _ -> None
      else
        match Atomic.get csp.root with
        | Root_doms d -> Some d
        | Root_wiped -> None
        | Root_unknown -> assert false (* the root state is never cleared *))

let copy_doms doms =
  Array.map (fun d -> { bits = Bitset.copy d.bits; card = d.card }) doms

exception Out_of_budget
exception Cancelled

(* Generic backtracking search.  [prune doms] may declare a subtree
   hopeless; [leaf h] is called on every complete homomorphism and
   returns [true] to stop with this solution.  Every branch node consumes
   one step of [budget]; exhaustion aborts the whole search via
   [Out_of_budget] (caught by the budgeted entry points).  [take]
   overrides the budget consumption (the parallel subtree searches pass
   a per-domain chunked view of the shared budget) and [cancel] is
   polled once per branch node — when it fires the search unwinds via
   [Cancelled], which the parallel driver treats as "result irrelevant"
   (only subtrees whose answer can no longer win are cancelled). *)
let solve_from ?budget ?take ?(cancel = fun () -> false) ~nodes csp st ~prune
    ~leaf =
  let exception Found of int array in
  let take =
    match take with
    | Some t -> t
    | None -> (
        match budget with
        | None -> fun () -> true
        | Some b -> fun () -> Engine.Budget.take b)
  in
  let rec go () =
    if cancel () then raise Cancelled;
    if not (take ()) then raise Out_of_budget;
    incr nodes;
    if not (prune st.doms) then begin
      let var = ref (-1) and best = ref max_int in
      Array.iteri
        (fun v d ->
          if d.card > 1 && d.card < !best then begin
            var := v;
            best := d.card
          end)
        st.doms;
      if !var = -1 then begin
        let h = Array.map dom_first st.doms in
        if leaf h then raise (Found h)
      end
      else
        let var = !var in
        let values = Bitset.to_list st.doms.(var).bits in
        List.iter
          (fun x ->
            let mark = st.trail_len in
            (try
               List.iter
                 (fun y -> if y <> x then dom_remove csp st var y)
                 values;
               propagate csp st [ var ];
               go ()
             with Wipeout -> ());
            undo_to csp st mark)
          values
    end
  in
  try
    go ();
    None
  with Found h -> Some h

let solve ?budget ?(nodes = ref 0) csp ~prune ~leaf =
  match root_doms csp with
  | None -> None
  | Some template ->
      solve_from ?budget ~nodes csp
        (fresh_state csp (copy_doms template))
        ~prune ~leaf

(* Parallel variant of [solve]: the root branch variable (chosen exactly
   as the sequential search would) fans its values out across the domain
   pool, one independent subtree search per value.  Determinism comes
   from the merge, not the schedule: subtree results are scanned in
   value order, so the returned solution is the one the sequential
   search would have found first.  Early cancellation preserves that —
   when subtree [i] finds a solution, only subtrees [j > i] (whose
   answer can no longer win) are cancelled; lower-indexed subtrees run
   to completion.  Only used with unlimited fuel: subtrees consume a
   shared deadline budget through per-domain chunked views, and a
   subtree that exhausts it aborts the whole search exactly as the
   sequential order would (scan hits its [Exhausted] before any later
   [Found]). *)
let solve_par ?budget ~nodes csp ~prune ~leaf =
  match root_doms csp with
  | None -> None
  | Some template ->
      let take0 =
        match budget with None -> true | Some b -> Engine.Budget.take b
      in
      if not take0 then raise Out_of_budget;
      incr nodes;
      if prune template then None
      else begin
        let var = ref (-1) and best_card = ref max_int in
        Array.iteri
          (fun v d ->
            if d.card > 1 && d.card < !best_card then begin
              var := v;
              best_card := d.card
            end)
          template;
        if !var = -1 then begin
          let h = Array.map dom_first template in
          if leaf h then Some h else None
        end
        else begin
          let var = !var in
          let values = Bitset.to_list template.(var).bits in
          let best = Atomic.make max_int in
          let subtree i x () =
            let sub_nodes = ref 0 in
            let take =
              match budget with
              | None -> None
              | Some b ->
                  let l = Engine.Budget.local b in
                  Some (fun () -> Engine.Budget.take_local l)
            in
            let cancel () = Atomic.get best < i in
            let st = fresh_state csp (copy_doms template) in
            let r =
              match
                List.iter
                  (fun y -> if y <> x then dom_remove csp st var y)
                  values;
                propagate csp st [ var ];
                solve_from ?take ~cancel ~nodes:sub_nodes csp st ~prune ~leaf
              with
              | Some h ->
                  (* Record the lowest solving index so later subtrees
                     stop wasting work. *)
                  let rec lower () =
                    let cur = Atomic.get best in
                    if i < cur && not (Atomic.compare_and_set best cur i)
                    then lower ()
                  in
                  lower ();
                  `Found h
              | None -> `Not_found
              | exception Wipeout -> `Not_found
              | exception Cancelled -> `Not_found
              | exception Out_of_budget -> `Exhausted
            in
            (r, !sub_nodes)
          in
          let results =
            Par.Pool.run (Array.of_list (List.mapi subtree values))
          in
          (* Merge in value order = the sequential exploration order.
             Fuel accounting follows the same rule: bill exactly the
             subtrees the sequential search would have entered — those
             up to and including the first [`Found]/[`Exhausted] in value
             order.  A later subtree that was cancelled (or that ran to
             completion speculatively before the winner posted) explored
             nodes the sequential order never would; billing those would
             make the reported count depend on the steal schedule. *)
          let rec scan i =
            if i >= Array.length results then None
            else begin
              nodes := !nodes + snd results.(i);
              match fst results.(i) with
              | `Exhausted -> raise Out_of_budget
              | `Found h -> Some h
              | `Not_found -> scan (i + 1)
            end
          in
          scan 0
        end
      end

type csp_handle = csp

let csp_of = build_csp

type violation_outcome = {
  result : [ `Preserved | `Violation of t * int list | `Budget_exhausted ];
  nodes_explored : int;
}

let search_violating ?budget ?csp g s =
  Obs.Span.with_ "csp.search" @@ fun () ->
  let csp = match csp with Some c -> c | None -> build_csp g in
  (* Prune when every tuple of S is forced to stay inside S: enumerate
     each tuple's image product as long as it is small; a large product
     conservatively counts as a possible violation. *)
  let cap = 4096 in
  let tuple_can_escape doms tup =
    let rec go prefix_rev = function
      | [] -> not (Tuple_relation.mem s (List.rev prefix_rev))
      | p :: rest ->
          let escaped = ref false in
          Bitset.iter
            (fun x -> if not !escaped then escaped := go (x :: prefix_rev) rest)
            doms.(p).bits;
          !escaped
    in
    let size = List.fold_left (fun acc p -> acc * doms.(p).card) 1 tup in
    if size > cap then true else go [] tup
  in
  let prune doms = not (Tuple_relation.exists (tuple_can_escape doms) s) in
  let escapes h tup = not (Tuple_relation.mem s (List.map (fun p -> h.(p)) tup)) in
  let leaf h = Tuple_relation.exists (escapes h) s in
  let nodes = ref 0 in
  (* The parallel root split requires unlimited fuel: with a finite step
     bound, which subtree hits exhaustion first would depend on the
     schedule, so finite-fuel searches keep the sequential order (same
     exhaustion point at any pool size).  Deadlines are fine — a timeout
     is inherently wall-clock-dependent either way. *)
  (* [in_pool]: inside a pool task a nested batch would inline anyway,
     so the speculative parallel shapes fall back to their sequential
     form instead of paying fan-out overhead for no concurrency. *)
  let par_ok =
    Par.Pool.size () > 1
    && (not (Par.Pool.in_pool ()))
    && match budget with
       | None -> true
       | Some b -> not (Engine.Budget.has_fuel_limit b)
  in
  let result =
    match
      if par_ok then solve_par ?budget ~nodes csp ~prune ~leaf
      else solve ?budget ~nodes csp ~prune ~leaf
    with
    | exception Out_of_budget -> `Budget_exhausted
    | None -> `Preserved
    | Some h ->
        let tup = Option.get (Tuple_relation.find_opt (escapes h) s) in
        `Violation (h, tup)
  in
  { result; nodes_explored = !nodes }

let find_violating g s =
  match (search_violating g s).result with
  | `Violation (h, _) -> Some h
  | `Preserved -> None
  | `Budget_exhausted -> assert false (* no budget was given *)

let all ?(limit = 100_000) g =
  let csp = build_csp g in
  let acc = ref [] in
  let c = ref 0 in
  let (_ : int array option) =
    solve csp
      ~prune:(fun _ -> false)
      ~leaf:(fun h ->
        acc := Array.copy h :: !acc;
        incr c;
        !c >= limit)
  in
  List.rev !acc

let count ?(limit = 1_000_000) g =
  let csp = build_csp g in
  let c = ref 0 in
  let (_ : int array option) =
    solve csp
      ~prune:(fun _ -> false)
      ~leaf:(fun _ ->
        incr c;
        !c >= limit)
  in
  !c

let pp g ppf h =
  Format.fprintf ppf "{@[<hov>";
  Array.iteri
    (fun p x ->
      if p > 0 then Format.fprintf ppf ",@ ";
      Format.fprintf ppf "%s↦%s" (Data_graph.name g p) (Data_graph.name g x))
    h;
  Format.fprintf ppf "@]}"
