(** RDPQ_mem-definability (Section 3): can a relation be defined by a
    regular expression with memory?

    [search_k] decides the bounded-register problem (Theorem 22,
    [NSpace(O(n²δ^k))]) by witness search over the k-assignment graph
    (Definition 19): Lemma 18 reduces definability to the existence of a
    basic k-REM witness per pair, and Lemma 20 turns those into
    reachability in [T_G].

    [search] decides the unbounded problem (Theorem 24, ExpSpace): by
    Lemma 23, [S] is definable iff it is δ-definable, and the proof shows
    [e_\[w\]]-shaped witnesses suffice — so the search runs over the
    smaller profile automaton ({!Profile_graph}) instead of the full
    δ-assignment graph.

    The uniform result type lives in {!Engine.Outcome}; dispatch through
    {!Engine.Registry} (languages ["rem"] / ["krem"], registered by
    {!Deciders}).  This module keeps the raw searches and the
    witness → REM decoding; direct callers read the verdict off the
    {!Witness_search.outcome} and decode over their own
    {!Profile_graph} / {!Assignment_graph}. *)

val search_k :
  ?max_tuples:int ->
  ?budget:Engine.Budget.t ->
  ?all_condition_sets:bool ->
  Datagraph.Data_graph.t ->
  k:int ->
  Datagraph.Relation.t ->
  Witness_search.outcome
(** The k-RDPQ_mem-definability search.  [all_condition_sets] switches
    the ablation block alphabet (see {!Assignment_graph.create}). *)

val search :
  ?max_tuples:int ->
  ?budget:Engine.Budget.t ->
  Datagraph.Data_graph.t ->
  Datagraph.Relation.t ->
  Witness_search.outcome
(** The unbounded RDPQ_mem-definability search via the profile
    automaton. *)

val search_delta_registers :
  ?max_tuples:int ->
  ?budget:Engine.Budget.t ->
  Datagraph.Data_graph.t ->
  Datagraph.Relation.t ->
  Witness_search.outcome
(** The unbounded problem decided literally as Lemma 23 states it — as
    δ-RDPQ_mem-definability over the full δ-assignment graph.  Equivalent
    to {!search} and much slower; kept for the [profile-vs-full] ablation
    and cross-checking. *)

val empty_rem : Rem_lang.Rem.t
(** An REM with empty language (unsatisfiable test) — defines ∅. *)

val union_rem : Rem_lang.Rem.t list -> Rem_lang.Rem.t
(** n-ary union; {!empty_rem} for the empty list. *)

val query_of_witnesses_k :
  Assignment_graph.t -> ((int * int) * string list) list -> Rem_lang.Rem.t
(** Decode k-REM witnesses (Lemma 18) into a defining union. *)

val query_of_witnesses :
  Profile_graph.t -> ((int * int) * string list) list -> Rem_lang.Rem.t
(** Decode profile witnesses into a union of [e_\[w\]] (Lemma 15). *)
