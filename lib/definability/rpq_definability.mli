(** RPQ-definability — the baseline problem of reference [3], used by the
    paper both as the data-free special case and as the target of the
    G_aut reduction sketched in Section 3.

    A relation [S] is definable by a standard regular expression iff every
    pair [(u,v) ∈ S] has a witness {e word} [w] with
    [(u,v) ∈ R(w) ⊆ S], where [R(w)] is the set of pairs connected by a
    path labeled [w]; the disjunction of witness words then defines [S].
    Decided by {!Witness_search} over the graph itself (states = nodes,
    blocks = letters) — PSpace-complete in general [3].

    The uniform result type lives in {!Engine.Outcome}; dispatch through
    {!Engine.Registry} (language ["rpq"], registered by {!Deciders}).
    This module keeps the search configuration and witness decoding;
    direct callers read the verdict off the {!Witness_search.outcome}. *)

val config : Datagraph.Data_graph.t -> Witness_search.config
(** States = nodes, blocks = letters, every node a source. *)

val search :
  ?max_tuples:int ->
  ?budget:Engine.Budget.t ->
  Datagraph.Data_graph.t ->
  Datagraph.Relation.t ->
  Witness_search.outcome

val query_of_witnesses :
  ((int * int) * string list) list -> Regexp.Regex.t
(** The union of the (deduplicated) witness words. *)
