module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation
module Basic_rem = Rem_lang.Basic_rem
module Rem = Rem_lang.Rem
module Condition = Rem_lang.Condition

let search_k ?max_tuples ?budget ?all_condition_sets g ~k s =
  let ag = Assignment_graph.create ?all_condition_sets g ~k in
  Witness_search.search ?max_tuples ?budget (Assignment_graph.config ag)
    ~target:s

let search ?max_tuples ?budget g s =
  let pg = Profile_graph.create g in
  Witness_search.search ?max_tuples ?budget (Profile_graph.config pg) ~target:s

let search_delta_registers ?max_tuples ?budget g s =
  search_k ?max_tuples ?budget g ~k:(Data_graph.delta g) s

let force_verdict (o : Witness_search.outcome) =
  match o.verdict with
  | Witness_search.Definable -> true
  | Witness_search.Not_definable _ -> false
  | Witness_search.Exhausted ->
      failwith "definability search truncated; raise max_tuples"

let is_definable_k ?max_tuples g ~k s = force_verdict (search_k ?max_tuples g ~k s)
let is_definable ?max_tuples g s = force_verdict (search ?max_tuples g s)

(* The REM with empty language, for defining the empty relation (the REM
   grammar has no ∅, but an unsatisfiable test provides one). *)
let empty_rem = Rem.Test (Rem.Eps, Condition.ff)

let union_rem = function
  | [] -> empty_rem
  | e :: rest -> List.fold_left (fun acc x -> Rem.Union (acc, x)) e rest

let query_of_witnesses_k ag witnesses =
  let rem_of_witness names =
    Basic_rem.to_rem
      (List.map (fun nm -> Assignment_graph.basic_block_of_name ag nm) names)
  in
  let distinct = List.sort_uniq compare (List.map snd witnesses) in
  union_rem (List.map rem_of_witness distinct)

let query_of_witnesses pg witnesses =
  let rem_of_witness names =
    Basic_rem.to_rem
      (Basic_rem.of_data_path (Profile_graph.path_of_witness pg names))
  in
  let distinct = List.sort_uniq compare (List.map snd witnesses) in
  union_rem (List.map rem_of_witness distinct)

let defining_query_k ?max_tuples g ~k s =
  let ag = Assignment_graph.create g ~k in
  let o =
    Witness_search.search ?max_tuples (Assignment_graph.config ag) ~target:s
  in
  if not (force_verdict o) then None
  else Some (query_of_witnesses_k ag o.witnesses)

let defining_query ?max_tuples g s =
  let pg = Profile_graph.create g in
  let o =
    Witness_search.search ?max_tuples (Profile_graph.config pg) ~target:s
  in
  if not (force_verdict o) then None
  else Some (query_of_witnesses pg o.witnesses)
