module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation
module Basic_rem = Rem_lang.Basic_rem
module Rem = Rem_lang.Rem
module Condition = Rem_lang.Condition

let search_k ?max_tuples ?budget ?all_condition_sets g ~k s =
  let ag = Assignment_graph.create ?all_condition_sets g ~k in
  Witness_search.search ?max_tuples ?budget (Assignment_graph.config ag)
    ~target:s

let search ?max_tuples ?budget g s =
  let pg = Profile_graph.create g in
  Witness_search.search ?max_tuples ?budget (Profile_graph.config pg) ~target:s

let search_delta_registers ?max_tuples ?budget g s =
  search_k ?max_tuples ?budget g ~k:(Data_graph.delta g) s

(* The REM with empty language, for defining the empty relation (the REM
   grammar has no ∅, but an unsatisfiable test provides one). *)
let empty_rem = Rem.Test (Rem.Eps, Condition.ff)

let union_rem = function
  | [] -> empty_rem
  | e :: rest -> List.fold_left (fun acc x -> Rem.Union (acc, x)) e rest

let query_of_witnesses_k ag witnesses =
  let rem_of_witness names =
    Basic_rem.to_rem
      (List.map (fun nm -> Assignment_graph.basic_block_of_name ag nm) names)
  in
  let distinct = List.sort_uniq compare (List.map snd witnesses) in
  union_rem (List.map rem_of_witness distinct)

let query_of_witnesses pg witnesses =
  let rem_of_witness names =
    Basic_rem.to_rem
      (Basic_rem.of_data_path (Profile_graph.path_of_witness pg names))
  in
  let distinct = List.sort_uniq compare (List.map snd witnesses) in
  union_rem (List.map rem_of_witness distinct)
