(** The determinized tuple-of-subsets search at the heart of the paper's
    upper bounds (proof of Lemma 21 / Theorem 22, and the RPQ-definability
    baseline of reference [3]).

    The abstract setting: a finite transition system whose transitions are
    grouped into finitely many {e blocks} (deterministic subset-successor
    maps), one designated initial state per {e source} node, and a map
    from states back to graph nodes.  A sequence of blocks [e] is a
    {e witness} for a pair [(p, q)] of a target relation [S] when,
    writing [Q_i] for the set of states reachable from source [i]'s
    initial state along [e]:

    - (connecting path) some state of [Q_p] maps to node [q], and
    - (no extraneous pairs) for every source [i] and state [s ∈ Q_i],
      the pair [(i, node_of s)] belongs to [S].

    The engine explores the deterministic graph of n-tuples
    [⟨Q_1, …, Q_n⟩] breadth-first, memoizing visited tuples — the
    pigeonhole argument of Lemma 21 is exactly the statement that this
    space is finite, so exhausting it decides the existence of witnesses
    for every pair of [S] simultaneously. *)

type block = {
  name : string;  (** used in reported witnesses *)
  succ : int -> int list;  (** successor states of a state *)
}

type config = {
  num_states : int;
  sources : int array;  (** [sources.(i)] is source [i]'s initial state *)
  node_of : int -> int;  (** graph node a state projects to *)
  blocks : block array;
}

type verdict =
  | Definable
  | Not_definable of (int * int) list
      (** pairs of the target with no witness *)
  | Exhausted
      (** hit [max_tuples] before deciding; answer unknown *)

type outcome = {
  verdict : verdict;
  covered : Datagraph.Relation.t;  (** pairs with a witness found *)
  witnesses : ((int * int) * string list) list;
      (** for each covered pair, the block-name sequence of one witness
          (shortest in block count) *)
  tuples_explored : int;
}

val search :
  ?max_tuples:int ->
  ?budget:Engine.Budget.t ->
  config ->
  target:Datagraph.Relation.t ->
  outcome
(** Decide witness existence for every pair of [target].
    [max_tuples] (default [2_000_000]) bounds the explored tuple count;
    exceeding it yields [Exhausted] unless every pair was already
    covered.  An empty target is trivially [Definable].  [budget]
    (default unlimited) bounds the search further: registering a tuple
    costs one step of fuel and the BFS loop polls the deadline, so an
    exhausted budget yields [Exhausted] with whatever was covered so
    far. *)
