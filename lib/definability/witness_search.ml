module Relation = Datagraph.Relation
module Bitset = Util.Bitset

let log_src =
  Logs.Src.create "definability.witness_search"
    ~doc:"tuple-of-subsets witness search"

module Log = (val Logs.src_log log_src : Logs.LOG)

type block = { name : string; succ : int -> int list }

type config = {
  num_states : int;
  sources : int array;
  node_of : int -> int;
  blocks : block array;
}

type verdict =
  | Definable
  | Not_definable of (int * int) list
  | Exhausted

type outcome = {
  verdict : verdict;
  covered : Relation.t;
  witnesses : ((int * int) * string list) list;
  tuples_explored : int;
}

(* A tuple ⟨Q_1,…,Q_n⟩ is an array of bitsets: entry i holds source i's
   reachable state set, packed one state per bit.  Applying a block is a
   union of precomputed successor rows over the set bits; the safety
   check is a word-parallel disjointness test against a precomputed
   "unsafe states" mask per source. *)

module Tuple_key = struct
  (* The hash is computed once at construction and stored: every tuple
     is hashed at least twice (membership probe, then insertion), and
     hashing the full bit pattern is the dominant cost of the BFS loop.
     [Hashtbl.hash] would not do: it samples only a bounded prefix of
     the structure, which collides catastrophically on wide tuples. *)
  type t = { h : int; rows : Bitset.t array }

  let equal a b =
    a.h = b.h
    && Array.length a.rows = Array.length b.rows
    &&
    let rec go i = i < 0 || (Bitset.equal a.rows.(i) b.rows.(i) && go (i - 1)) in
    go (Array.length a.rows - 1)

  let hash k = k.h

  let make rows =
    let h = ref 0 in
    Array.iter (fun b -> h := (!h * 1000003) lxor Bitset.hash b) rows;
    { h = !h land max_int; rows }
end

module Tuple_tbl = Hashtbl.Make (Tuple_key)

let search ?(max_tuples = 2_000_000) ?budget cfg ~target =
  Obs.Span.with_ "witness.search" @@ fun () ->
  let n = Array.length cfg.sources in
  if Relation.universe target <> n then
    invalid_arg "Witness_search.search: target universe <> number of sources";
  (* Budget integration: registering a tuple consumes one step of fuel;
     the pop loop additionally polls the deadline so an expired budget
     stops the search even when no new tuples are being discovered. *)
  let take () =
    match budget with None -> true | Some b -> Engine.Budget.take b
  in
  let budget_dead () =
    match budget with None -> false | Some b -> Engine.Budget.exhausted b
  in
  let ns = cfg.num_states in
  (* Deterministic successor rows per block, built once: row s is the
     successor set of state s. *)
  let succ_rows =
    Array.map
      (fun block ->
        Array.init ns (fun s ->
            let row = Bitset.create ns in
            List.iter (fun s' -> Bitset.add row s') (block.succ s);
            row))
      cfg.blocks
  in
  (* States whose projection leaves the target, per source. *)
  let bad =
    Array.init n (fun i ->
        let b = Bitset.create ns in
        for s = 0 to ns - 1 do
          if not (Relation.mem target i (cfg.node_of s)) then Bitset.add b s
        done;
        b)
  in
  (* Initial tuple. *)
  let t0 =
    Tuple_key.make
      (Array.init n (fun i ->
           let b = Bitset.create ns in
           Bitset.add b cfg.sources.(i);
           b))
  in
  (* Visited table and BFS bookkeeping.  Parents record (parent id, block
     index) for witness reconstruction. *)
  let visited : int Tuple_tbl.t = Tuple_tbl.create 4096 in
  let parents : (int * int) option array ref = ref (Array.make 1024 None) in
  let tuples : Tuple_key.t array ref = ref (Array.make 1024 t0) in
  let count = ref 0 in
  let register t parent =
    let id = !count in
    incr count;
    if id >= Array.length !parents then begin
      let parents' = Array.make (2 * id) None in
      Array.blit !parents 0 parents' 0 id;
      parents := parents';
      let tuples' = Array.make (2 * id) t0 in
      Array.blit !tuples 0 tuples' 0 id;
      tuples := tuples'
    end;
    !parents.(id) <- parent;
    !tuples.(id) <- t;
    Tuple_tbl.add visited t id;
    id
  in
  let covered = ref (Relation.empty n) in
  let witness_ids : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let target_card = Relation.cardinal target in
  let done_ = ref (target_card = 0) in
  let truncated = ref false in
  (* Per-block successor application on a whole tuple. *)
  let apply rows t =
    Array.map
      (fun qi ->
        let q' = Bitset.create ns in
        Bitset.iter (fun s -> Bitset.union_inplace q' rows.(s)) qi;
        q')
      t
  in
  (* Round-based BFS.  A FIFO queue explores tuples in level order, so
     the loop can process the frontier one level (round) at a time in
     two phases.  The expansion phase is pure — the safety test and the
     per-block successor tuples read only the (already registered)
     round's tuples — and is what fans out across the domain pool.  The
     merge phase then replays every effect (coverage, visited
     registration, fuel [take]s, the stop flags) sequentially in the
     exact order the one-domain pop loop produced them, so verdicts,
     witness paths and fuel consumption are byte-identical at every pool
     size.  When the sequential order would have stopped mid-round
     (coverage complete, budget dead), the merge stops at the same
     tuple; the speculative expansions behind it are pure and discarded. *)
  let compute id =
    let t = (!tuples.(id)).Tuple_key.rows in
    let safe = ref true in
    for i = 0 to n - 1 do
      if not (Bitset.disjoint t.(i) bad.(i)) then safe := false
    done;
    let children =
      Array.map
        (fun rows ->
          let rows' = apply rows t in
          if Array.exists (fun q -> not (Bitset.is_empty q)) rows' then
            Some (Tuple_key.make rows')
          else None)
        succ_rows
    in
    (!safe, children)
  in
  let next = ref [] in
  let process id (safe, children) =
    if safe then begin
      let t = (!tuples.(id)).Tuple_key.rows in
      for i = 0 to n - 1 do
        Bitset.iter
          (fun s ->
            let q = cfg.node_of s in
            if not (Relation.mem !covered i q) then begin
              covered := Relation.add !covered i q;
              Hashtbl.replace witness_ids (i, q) id
            end)
          t.(i)
      done;
      if Relation.cardinal !covered = target_card then done_ := true
    end;
    if not !done_ then
      Array.iteri
        (fun bi child ->
          match child with
          | None -> ()
          | Some t' ->
              if not (Tuple_tbl.mem visited t') then
                if !count >= max_tuples || not (take ()) then truncated := true
                else next := register t' (Some (id, bi)) :: !next)
        children
  in
  let frontier =
    ref (if take () then [ register t0 None ] else (truncated := true; []))
  in
  while !frontier <> [] && (not !done_) && not (budget_dead ()) do
    let items = Array.of_list !frontier in
    next := [];
    if Par.Pool.size () > 1 && (not (Par.Pool.in_pool ())) && Array.length items > 1
    then begin
      let results = Par.Pool.map compute items in
      Array.iteri
        (fun k r ->
          if (not !done_) && not (budget_dead ()) then process items.(k) r)
        results
    end
    else
      (* One domain: expand lazily, item by item, exactly like the
         original pop loop — no speculative work past a mid-round stop. *)
      Array.iteri
        (fun k id ->
          if k = 0 || ((not !done_) && not (budget_dead ())) then
            process id (compute id))
        items;
    frontier := List.rev !next
  done;
  (* Reconstruct block sequences for covered pairs. *)
  let path_of id =
    let rec go id acc =
      match !parents.(id) with
      | None -> acc
      | Some (pid, bi) -> go pid (cfg.blocks.(bi).name :: acc)
    in
    go id []
  in
  let witnesses =
    Hashtbl.fold (fun pair id acc -> ((pair, path_of id)) :: acc) witness_ids []
    |> List.sort compare
  in
  if budget_dead () then truncated := true;
  let verdict =
    if Relation.cardinal !covered = target_card then Definable
    else if !truncated then Exhausted
    else Not_definable (Relation.to_list (Relation.diff target !covered))
  in
  Log.debug (fun m ->
      m "explored %d tuples; covered %d/%d pairs%s" !count
        (Relation.cardinal !covered)
        target_card
        (if !truncated then " (truncated)" else ""));
  { verdict; covered = !covered; witnesses; tuples_explored = !count }
