module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation
module Tuple_relation = Datagraph.Tuple_relation
module Conjunctive = Query_lang.Conjunctive
module Query = Query_lang.Query

type report = {
  definable : bool;
  violation : (Hom.t * int list) option;
}

let check g s =
  match Hom.find_violating g s with
  | None -> { definable = true; violation = None }
  | Some h ->
      let tup =
        Tuple_relation.find_opt
          (fun tup -> not (Tuple_relation.mem s (List.map (fun p -> h.(p)) tup)))
          s
      in
      { definable = false; violation = Some (h, Option.get tup) }

let is_definable g s = (check g s).definable

let is_definable_binary g s = is_definable g (Tuple_relation.of_binary s)

let var i = "x" ^ string_of_int i

let phi_g g =
  let n = Data_graph.size g in
  let letters =
    List.map (fun a -> Regexp.Regex.Letter a) (Data_graph.alphabet g)
  in
  let sigma_plus = Regexp.Regex.Plus (Regexp.Regex.union_of letters) in
  let ree_of r = Ree_lang.Ree.of_regex r in
  let edge_atoms =
    List.map
      (fun (p, a, q) ->
        {
          Conjunctive.src = var p;
          dst = var q;
          expr = Query.Rpq (Regexp.Regex.Letter a);
        })
      (Data_graph.edges g)
  in
  let reach_pairs =
    if letters = [] then Relation.empty n
    else Relation.transitive_closure (Relation.step_relation g)
  in
  let value = Data_graph.value g in
  let eq_atoms =
    Relation.fold
      (fun p q acc ->
        {
          Conjunctive.src = var p;
          dst = var q;
          expr = Query.Ree (Ree_lang.Ree.EqTest (ree_of sigma_plus));
        }
        :: acc)
      (Relation.restrict_eq ~value reach_pairs)
      []
  in
  let neq_atoms =
    Relation.fold
      (fun p q acc ->
        {
          Conjunctive.src = var p;
          dst = var q;
          expr = Query.Ree (Ree_lang.Ree.NeqTest (ree_of sigma_plus));
        }
        :: acc)
      (Relation.restrict_neq ~value reach_pairs)
      []
  in
  let ground_atoms =
    List.init n (fun i ->
        { Conjunctive.src = var i; dst = var i; expr = Query.Rpq Regexp.Regex.Eps })
  in
  ground_atoms @ edge_atoms @ eq_atoms @ neq_atoms

let canonical_query g s =
  let body = phi_g g in
  let queries =
    Tuple_relation.fold
      (fun tup acc ->
        { Conjunctive.head = List.map var tup; atoms = body } :: acc)
      s []
  in
  List.rev queries

let defining_query g s =
  if not (is_definable g s) then None else Some (canonical_query g s)
