module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation

let config g =
  let n = Data_graph.size g in
  let labels = List.init (Data_graph.label_count g) Fun.id in
  let blocks =
    List.map
      (fun lbl ->
        {
          Witness_search.name = Data_graph.label_name g lbl;
          succ = (fun v -> Data_graph.succ_id g v lbl);
        })
      labels
    |> Array.of_list
  in
  {
    Witness_search.num_states = n;
    sources = Array.init n Fun.id;
    node_of = Fun.id;
    blocks;
  }

let search ?max_tuples ?budget g s =
  Witness_search.search ?max_tuples ?budget (config g) ~target:s

let query_of_witnesses witnesses =
  let words = List.sort_uniq compare (List.map snd witnesses) in
  Regexp.Regex.union_of (List.map Regexp.Regex.of_word words)

let force_verdict (o : Witness_search.outcome) =
  match o.verdict with
  | Witness_search.Definable -> true
  | Witness_search.Not_definable _ -> false
  | Witness_search.Exhausted ->
      failwith "definability search truncated; raise max_tuples"

let is_definable ?max_tuples g s = force_verdict (search ?max_tuples g s)

let defining_query ?max_tuples g s =
  let o = search ?max_tuples g s in
  if not (force_verdict o) then None
  else Some (query_of_witnesses o.witnesses)
