module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation

let config g =
  let n = Data_graph.size g in
  let labels = List.init (Data_graph.label_count g) Fun.id in
  let blocks =
    List.map
      (fun lbl ->
        {
          Witness_search.name = Data_graph.label_name g lbl;
          succ = (fun v -> Data_graph.succ_id g v lbl);
        })
      labels
    |> Array.of_list
  in
  {
    Witness_search.num_states = n;
    sources = Array.init n Fun.id;
    node_of = Fun.id;
    blocks;
  }

let search ?max_tuples ?budget g s =
  Witness_search.search ?max_tuples ?budget (config g) ~target:s

let query_of_witnesses witnesses =
  let words = List.sort_uniq compare (List.map snd witnesses) in
  Regexp.Regex.union_of (List.map Regexp.Regex.of_word words)

