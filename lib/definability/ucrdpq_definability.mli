(** UCRDPQ-definability (Section 5) — coNP-complete (Theorem 35).

    By Lemma 34, a relation [S] (of any arity) is definable by a union of
    conjunctive regular data path queries iff every data graph
    homomorphism preserves [S].  The checker searches for a violating
    homomorphism; when none exists, {!defining_query} emits the canonical
    query of the Lemma 34 proof — one CRDPQ per tuple of [S], all sharing
    the body [φ_G] that pins valuations to homomorphisms using one atom
    per edge plus [(Σ⁺)=] and [(Σ⁺)≠] atoms for reachable pairs. *)

type report = {
  definable : bool;
  violation : (Hom.t * int list) option;
      (** a homomorphism [h] and a tuple [p ∈ S] with [h(p) ∉ S] *)
}

val check :
  Datagraph.Data_graph.t -> Datagraph.Tuple_relation.t -> report

val is_definable :
  Datagraph.Data_graph.t -> Datagraph.Tuple_relation.t -> bool

val is_definable_binary :
  Datagraph.Data_graph.t -> Datagraph.Relation.t -> bool

val phi_g : Datagraph.Data_graph.t -> Query_lang.Conjunctive.atom list
(** The body [φ_G(x̄)] of Lemma 34 over variables ["x0" … "x<n-1>"]
    (one per node), including a trivial [xi -eps-> xi] atom per node so
    every variable occurs. *)

val canonical_query :
  Datagraph.Data_graph.t ->
  Datagraph.Tuple_relation.t ->
  Query_lang.Conjunctive.t
(** The Lemma 34 query — one CRDPQ per tuple of [S] over the shared body
    {!phi_g} — {e without} checking definability first: it defines [S]
    exactly when [S] is preserved by every homomorphism.  For the empty
    relation the result is the empty union [[]]. *)

val defining_query :
  Datagraph.Data_graph.t ->
  Datagraph.Tuple_relation.t ->
  Query_lang.Conjunctive.t option
(** The canonical defining UCRDPQ, or [None] if not definable.  For the
    empty relation the result is the empty union [[]] (which
    {!Query_lang.Conjunctive.eval} rejects; it denotes ∅). *)
