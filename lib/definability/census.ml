module Data_graph = Datagraph.Data_graph
module Relation = Datagraph.Relation
module Tuple_relation = Datagraph.Tuple_relation

type t = {
  relations : int;
  rpq : int;
  ree : int;
  krem : int array;
  rem : int;
  ucrdpq : int;
}

let binary ?(max_k = 2) ?sample ?(seed = 0) g =
  let n = Data_graph.size g in
  let bits = n * n in
  (* The relations to examine. *)
  let relations =
    match sample with
    | None ->
        if bits > 20 then
          invalid_arg
            "Census.binary: too many relations to enumerate; pass ~sample";
        List.init (1 lsl bits) (fun code ->
            let r = ref (Relation.empty n) in
            for u = 0 to n - 1 do
              for v = 0 to n - 1 do
                if (code lsr ((u * n) + v)) land 1 = 1 then
                  r := Relation.add !r u v
              done
            done;
            !r)
    | Some count ->
        List.init count (fun i ->
            Datagraph.Graph_gen.random_relation ~seed:(seed + i) g ~density:0.3)
        |> List.sort_uniq Relation.compare
  in
  (* Shared precomputation. *)
  let homs = Hom.all g in
  let closure, _ = Ree_definability.closure g in
  let preserved s =
    List.for_all
      (fun h ->
        Relation.fold
          (fun u v ok -> ok && Relation.mem s h.(u) h.(v))
          s true)
      homs
  in
  let ree_definable s =
    let covered = ref (Relation.empty n) in
    List.iter
      (fun (r, _) -> if Relation.subset r s then covered := Relation.union !covered r)
      closure;
    Relation.equal !covered s
  in
  let decided (o : Witness_search.outcome) =
    match o.verdict with
    | Witness_search.Definable -> true
    | Witness_search.Not_definable _ -> false
    | Witness_search.Exhausted ->
        failwith "definability search truncated; raise max_tuples"
  in
  let counts = Array.make (max_k + 1) 0 in
  let rpq = ref 0 and ree = ref 0 and rem = ref 0 and uc = ref 0 in
  List.iter
    (fun s ->
      if decided (Rpq_definability.search g s) then incr rpq;
      if ree_definable s then incr ree;
      if decided (Rem_definability.search g s) then incr rem;
      if preserved s then incr uc;
      for k = 0 to max_k do
        if decided (Rem_definability.search_k g ~k s) then
          counts.(k) <- counts.(k) + 1
      done)
    relations;
  {
    relations = List.length relations;
    rpq = !rpq;
    ree = !ree;
    krem = counts;
    rem = !rem;
    ucrdpq = !uc;
  }

let pp ppf c =
  Format.fprintf ppf
    "@[<v>relations examined: %d@,RPQ-definable:      %d@,RDPQ=-definable:    \
     %d@,k-REM definable:    %s@,RDPQmem-definable:  %d@,UCRDPQ-definable:   \
     %d@]"
    c.relations c.rpq c.ree
    (String.concat ", "
       (Array.to_list
          (Array.mapi (fun k v -> Printf.sprintf "k=%d:%d" k v) c.krem)))
    c.rem c.ucrdpq
