module Bitset = Util.Bitset
module Bitmatrix = Util.Bitmatrix

type node = int
type label = string

type t = {
  values : Data_value.t array;
  names : string array;
  name_index : (string, node) Hashtbl.t;
  labels : label array;
  label_index : (label, int) Hashtbl.t;
  (* succ.(u).(a) and pred.(u).(a) are sorted lists of neighbours. *)
  succ : node list array array;
  pred : node list array array;
  edge_list : (node * int * node) list;
  (* Precomputed at build time so [edges] and [edge_count] are O(1). *)
  edges_resolved : (node * label * node) list;
  num_edges : int;
  domain : Data_value.t array;
  value_idx : int array;
  (* Lazily-built caches.  A graph is immutable after construction (the
     constructors only retouch [names]), so these never invalidate.
     They are atomics, published with a compare-and-set: the build is a
     pure function of the graph, so two domains racing the first access
     both build identical matrices and the CAS loser adopts the winner's
     — duplicated work at worst, never a torn or unpublished value
     (plain mutable fields would give readers no happens-before edge to
     the builder's writes). *)
  uid : int;
  adj_cache : Bitmatrix.t array option Atomic.t;
  reach_cache : Bitmatrix.t option Atomic.t;
}

(* Atomic so graphs built from worker domains still get distinct uids
   (the uid keys cross-module caches; a duplicate would alias them). *)
let uid_counter = Atomic.make 0
let uid g = g.uid

(* Cache-build telemetry: how often the bitset kernel recomputes the
   per-label adjacency matrices and the reachability closure.  Builds
   happen at most once per graph; a high build count under load means
   graphs are being reconstructed instead of reused.  The patch counters
   track the incremental edit path: an edited graph that inherits its
   parent's matrices records a patch, not a build. *)
let c_adjacency_builds = Obs.Counter.make "datagraph.adjacency_builds"
let c_reachability_builds = Obs.Counter.make "datagraph.reachability_builds"
let c_adjacency_patches = Obs.Counter.make "datagraph.adjacency_patches"
let c_reachability_patches = Obs.Counter.make "datagraph.reachability_patches"

let size g = Array.length g.values
let nodes g = List.init (size g) Fun.id
let value g v = g.values.(v)
let same_value g u v = Data_value.equal g.values.(u) g.values.(v)
let name g v = g.names.(v)
let node_of_name g s = Hashtbl.find g.name_index s
let domain g = Array.to_list g.domain
let delta g = Array.length g.domain
let value_index g v = g.value_idx.(v)

let nodes_with_value g d =
  List.filter (fun v -> Data_value.equal g.values.(v) d) (nodes g)

let alphabet g = Array.to_list g.labels
let label_count g = Array.length g.labels
let label_id g a = Hashtbl.find g.label_index a
let label_id_opt g a = Hashtbl.find_opt g.label_index a
let label_name g i = g.labels.(i)

let edges g = g.edges_resolved
let edge_count g = g.num_edges
let succ_id g u a = g.succ.(u).(a)

let succ g u a =
  match label_id_opt g a with None -> [] | Some i -> g.succ.(u).(i)

let succ_all g u =
  let acc = ref [] in
  for a = Array.length g.labels - 1 downto 0 do
    List.iter (fun v -> acc := (a, v) :: !acc) g.succ.(u).(a)
  done;
  !acc

let pred_id g u a = g.pred.(u).(a)

(* Scratch builders, shared by the lazy cache paths, the edit patch
   paths (removal recompute) and the [audit_edits] assertion. *)
let compute_adjacency ~n ~num_labels succ =
  let a = Array.init num_labels (fun _ -> Bitmatrix.create n n) in
  Array.iteri
    (fun u row ->
      Array.iteri
        (fun lbl succs -> List.iter (fun v -> Bitmatrix.set a.(lbl) u v) succs)
        row)
    succ;
  a

let compute_reachability ~n adj =
  let m = Bitmatrix.create n n in
  Array.iter
    (fun am ->
      for u = 0 to n - 1 do
        Bitset.union_inplace (Bitmatrix.row m u) (Bitmatrix.row am u)
      done)
    adj;
  Bitmatrix.set_diagonal m;
  Bitmatrix.closure_inplace m;
  m

let adjacency g =
  match Atomic.get g.adj_cache with
  | Some a -> a
  | None -> (
      Obs.Counter.incr c_adjacency_builds;
      let a =
        compute_adjacency ~n:(size g) ~num_labels:(Array.length g.labels) g.succ
      in
      if Atomic.compare_and_set g.adj_cache None (Some a) then a
      else
        match Atomic.get g.adj_cache with
        | Some winner -> winner
        | None -> a (* unreachable: the cache is only ever set, never cleared *))

let adjacency_matrix g lbl = (adjacency g).(lbl)

let reachability_matrix g =
  match Atomic.get g.reach_cache with
  | Some m -> m
  | None -> (
      Obs.Counter.incr c_reachability_builds;
      let m = compute_reachability ~n:(size g) (adjacency g) in
      if Atomic.compare_and_set g.reach_cache None (Some m) then m
      else
        match Atomic.get g.reach_cache with
        | Some winner -> winner
        | None -> m)

let mem_edge g u a v =
  u >= 0 && u < size g && v >= 0 && v < size g
  &&
  match label_id_opt g a with
  | None -> false
  | Some lbl -> Bitmatrix.get (adjacency g).(lbl) u v

(* Sorted distinct values plus the per-node index into that array; shared
   by [build] and [add_node] (node addition can enlarge the domain). *)
let compute_domain values =
  let dom =
    Array.of_list
      (Data_value.Set.elements
         (Array.fold_left
            (fun s d -> Data_value.Set.add d s)
            Data_value.Set.empty values))
  in
  let dom_index = Hashtbl.create 8 in
  Array.iteri (fun i d -> Hashtbl.add dom_index (Data_value.to_int d) i) dom;
  let value_idx =
    Array.map (fun d -> Hashtbl.find dom_index (Data_value.to_int d)) values
  in
  (dom, value_idx)

let build ~values ~edges =
  let n = Array.length values in
  let names = Array.init n (fun i -> "v" ^ string_of_int i) in
  let name_index = Hashtbl.create (max 1 n) in
  Array.iteri (fun i s -> Hashtbl.add name_index s i) names;
  (* Intern labels in first-occurrence order. *)
  let label_index = Hashtbl.create 8 in
  let labels_rev = ref [] in
  let intern a =
    match Hashtbl.find_opt label_index a with
    | Some i -> i
    | None ->
        let i = Hashtbl.length label_index in
        Hashtbl.add label_index a i;
        labels_rev := a :: !labels_rev;
        i
  in
  let interned =
    List.map
      (fun (u, a, v) ->
        if u < 0 || u >= n || v < 0 || v >= n then
          invalid_arg "Data_graph.build: edge endpoint out of range";
        (u, intern a, v))
      edges
  in
  let labels = Array.of_list (List.rev !labels_rev) in
  let nl = Array.length labels in
  let succ = Array.init n (fun _ -> Array.make nl []) in
  let pred = Array.init n (fun _ -> Array.make nl []) in
  let seen = Hashtbl.create (max 1 (List.length interned)) in
  List.iter
    (fun (u, a, v) ->
      if Hashtbl.mem seen (u, a, v) then
        invalid_arg "Data_graph.build: duplicate edge";
      Hashtbl.add seen (u, a, v) ();
      succ.(u).(a) <- v :: succ.(u).(a);
      pred.(v).(a) <- u :: pred.(v).(a))
    interned;
  Array.iter (fun row -> Array.iteri (fun a l -> row.(a) <- List.sort compare l) row) succ;
  Array.iter (fun row -> Array.iteri (fun a l -> row.(a) <- List.sort compare l) row) pred;
  let dom, value_idx = compute_domain values in
  {
    values = Array.copy values;
    names;
    name_index;
    labels;
    label_index;
    succ;
    pred;
    edge_list = List.rev interned;
    edges_resolved = List.map (fun (u, a, v) -> (u, labels.(a), v)) interned;
    num_edges = List.length interned;
    domain = dom;
    value_idx;
    uid = 1 + Atomic.fetch_and_add uid_counter 1;
    adj_cache = Atomic.make None;
    reach_cache = Atomic.make None;
  }

let make ~nodes ~edges =
  let names = Array.of_list (List.map fst nodes) in
  let values = Array.of_list (List.map snd nodes) in
  let name_index = Hashtbl.create (max 1 (Array.length names)) in
  Array.iteri
    (fun i s ->
      if Hashtbl.mem name_index s then
        invalid_arg ("Data_graph.make: duplicate node name " ^ s);
      Hashtbl.add name_index s i)
    names;
  let resolve s =
    match Hashtbl.find_opt name_index s with
    | Some i -> i
    | None -> invalid_arg ("Data_graph.make: unknown node " ^ s)
  in
  let edges = List.map (fun (u, a, v) -> (resolve u, a, resolve v)) edges in
  let g = build ~values ~edges in
  (* [build] assigned default names; overwrite with the requested ones. *)
  Array.blit names 0 g.names 0 (Array.length names);
  Hashtbl.reset g.name_index;
  Array.iteri (fun i s -> Hashtbl.add g.name_index s i) g.names;
  g

(* ------------------------------------------------------------------ *)
(* Incremental edits.                                                  *)
(*                                                                     *)
(* Graphs stay immutable: each edit returns a new record with a fresh  *)
(* uid, sharing every unchanged array with its parent.  The point of   *)
(* the edit constructors (vs. rebuilding via [build]) is cache         *)
(* inheritance — a parent's packed adjacency/reachability matrices are *)
(* patched in O(n) instead of recomputed in O(n^3), which is what      *)
(* makes the engine's certificate-repair fast path cheap.              *)
(* ------------------------------------------------------------------ *)

(* When set (the test suite turns it on), every edit cross-checks its
   patched matrices against a scratch rebuild and fails loudly on any
   divergence — the cache-invalidation audit for the incremental path. *)
let audit_edits = ref false

let audit_caches g =
  (match Atomic.get g.adj_cache with
  | None -> ()
  | Some a ->
      let fresh =
        compute_adjacency ~n:(size g) ~num_labels:(Array.length g.labels) g.succ
      in
      if
        Array.length a <> Array.length fresh
        || not (Array.for_all2 Bitmatrix.equal a fresh)
      then failwith "Data_graph edit audit: patched adjacency <> scratch rebuild");
  (match Atomic.get g.reach_cache with
  | None -> ()
  | Some m ->
      let fresh = compute_reachability ~n:(size g) (adjacency g) in
      if not (Bitmatrix.equal m fresh) then
        failwith "Data_graph edit audit: patched reachability <> scratch rebuild");
  g

let audit g = if !audit_edits then audit_caches g else g

let fresh_uid () = 1 + Atomic.fetch_and_add uid_counter 1

let add_edge g u a v =
  let n = size g in
  if u < 0 || u >= n || v < 0 || v >= n then
    invalid_arg "Data_graph.add_edge: endpoint out of range";
  let existing = label_id_opt g a in
  (match existing with
  | Some lbl when List.mem v g.succ.(u).(lbl) ->
      invalid_arg "Data_graph.add_edge: duplicate edge"
  | _ -> ());
  let nl_old = Array.length g.labels in
  let labels, label_index, lbl =
    match existing with
    | Some lbl -> (g.labels, g.label_index, lbl)
    | None ->
        let labels = Array.append g.labels [| a |] in
        let index = Hashtbl.copy g.label_index in
        Hashtbl.add index a nl_old;
        (labels, index, nl_old)
  in
  let fresh_label = existing = None in
  let nl = Array.length labels in
  (* A fresh label widens every per-node row by one slot, so all inner
     arrays are reallocated; otherwise only the touched rows are copied
     (the rest stay shared with the parent). *)
  let grow row = Array.init nl (fun i -> if i < nl_old then row.(i) else []) in
  let succ =
    if fresh_label then Array.map grow g.succ
    else (
      let s = Array.copy g.succ in
      s.(u) <- Array.copy s.(u);
      s)
  in
  let pred =
    if fresh_label then Array.map grow g.pred
    else (
      let p = Array.copy g.pred in
      p.(v) <- Array.copy p.(v);
      p)
  in
  succ.(u).(lbl) <- List.sort compare (v :: succ.(u).(lbl));
  pred.(v).(lbl) <- List.sort compare (u :: pred.(v).(lbl));
  let adj_cache =
    match Atomic.get g.adj_cache with
    | None -> Atomic.make None
    | Some old ->
        Obs.Counter.incr c_adjacency_patches;
        (* Copy only the edited label's matrix; the others are shared. *)
        let a' =
          Array.init nl (fun i ->
              if i = lbl then
                if i < nl_old then Bitmatrix.copy old.(i)
                else Bitmatrix.create n n
              else old.(i))
        in
        Bitmatrix.set a'.(lbl) u v;
        Atomic.make (Some a')
  in
  let reach_cache =
    match Atomic.get g.reach_cache with
    | None -> Atomic.make None
    | Some m ->
        if Bitmatrix.get m u v then
          (* u already reached v, so the closure is unchanged and the
             matrix can be shared outright. *)
          Atomic.make (Some m)
        else (
          Obs.Counter.incr c_reachability_patches;
          (* Single-edge incremental closure: any path through the new
             edge splits as old-path to u, the edge, old-path from v, so
             R'(x,y) = R(x,y) or (R(x,u) and R(v,y)).  Both reads are
             from the untouched parent matrix, so no snapshot is
             needed while the copy's rows are updated. *)
          let m' = Bitmatrix.copy m in
          for x = 0 to n - 1 do
            if Bitmatrix.get m x u then
              Bitset.union_inplace (Bitmatrix.row m' x) (Bitmatrix.row m v)
          done;
          Atomic.make (Some m'))
  in
  audit
    {
      g with
      labels;
      label_index;
      succ;
      pred;
      edge_list = g.edge_list @ [ (u, lbl, v) ];
      edges_resolved = g.edges_resolved @ [ (u, a, v) ];
      num_edges = g.num_edges + 1;
      uid = fresh_uid ();
      adj_cache;
      reach_cache;
    }

let remove_edge g u a v =
  let n = size g in
  let lbl =
    match label_id_opt g a with
    | Some lbl
      when u >= 0 && u < n && v >= 0 && v < n && List.mem v g.succ.(u).(lbl) ->
        lbl
    | _ -> invalid_arg "Data_graph.remove_edge: no such edge"
  in
  let succ = Array.copy g.succ in
  succ.(u) <- Array.copy succ.(u);
  succ.(u).(lbl) <- List.filter (fun x -> x <> v) succ.(u).(lbl);
  let pred = Array.copy g.pred in
  pred.(v) <- Array.copy pred.(v);
  pred.(v).(lbl) <- List.filter (fun x -> x <> u) pred.(v).(lbl);
  let adj_cache =
    match Atomic.get g.adj_cache with
    | None -> Atomic.make None
    | Some old ->
        Obs.Counter.incr c_adjacency_patches;
        let a' = Array.mapi (fun i m -> if i = lbl then Bitmatrix.copy m else m) old in
        Bitmatrix.unset a'.(lbl) u v;
        Atomic.make (Some a')
  in
  let reach_cache =
    (* A deletion can sever reachability for arbitrarily many pairs, and
       the closure gives no cheap way to tell which ones survive via
       other paths — recompute it from the patched adjacency.  That is
       the same work as a scratch build of the closure, but the O(1)
       adjacency patch above is preserved. *)
    match (Atomic.get g.reach_cache, Atomic.get adj_cache) with
    | None, _ -> Atomic.make None
    | Some _, Some adj ->
        Obs.Counter.incr c_reachability_builds;
        Atomic.make (Some (compute_reachability ~n adj))
    | Some _, None -> Atomic.make None (* unreachable: reach implies adj *)
  in
  let rec drop_id = function
    | [] -> []
    | (u', l', v') :: rest when u' = u && l' = lbl && v' = v -> rest
    | e :: rest -> e :: drop_id rest
  in
  let rec drop_resolved = function
    | [] -> []
    | (u', a', v') :: rest when u' = u && String.equal a' a && v' = v -> rest
    | e :: rest -> e :: drop_resolved rest
  in
  audit
    {
      g with
      succ;
      pred;
      edge_list = drop_id g.edge_list;
      edges_resolved = drop_resolved g.edges_resolved;
      num_edges = g.num_edges - 1;
      uid = fresh_uid ();
      adj_cache;
      reach_cache;
    }

let add_node g nm value =
  if Hashtbl.mem g.name_index nm then
    invalid_arg ("Data_graph.add_node: duplicate node name " ^ nm);
  let n = size g in
  let nl = Array.length g.labels in
  let values = Array.append g.values [| value |] in
  let names = Array.append g.names [| nm |] in
  let name_index = Hashtbl.copy g.name_index in
  Hashtbl.add name_index nm n;
  (* Outer arrays are copied by append; inner rows stay shared (the new
     node has no edges, so no row is mutated). *)
  let succ = Array.append g.succ [| Array.make nl [] |] in
  let pred = Array.append g.pred [| Array.make nl [] |] in
  let domain, value_idx = compute_domain values in
  (* The matrices are n-by-n; growing a row's width cannot share words
     with the parent, so caches restart empty and rebuild lazily — for
     an isolated new node that rebuild is exactly the scratch build. *)
  audit
    {
      g with
      values;
      names;
      name_index;
      succ;
      pred;
      domain;
      value_idx;
      uid = fresh_uid ();
      adj_cache = Atomic.make None;
      reach_cache = Atomic.make None;
    }

type path = { start : node; steps : (label * node) list }

let is_path g p =
  let rec go u = function
    | [] -> true
    | (a, v) :: rest -> mem_edge g u a v && go v rest
  in
  go p.start p.steps

let path_end p =
  match List.rev p.steps with [] -> p.start | (_, v) :: _ -> v

let data_path_of g p =
  if not (is_path g p) then invalid_arg "Data_graph.data_path_of: not a path";
  let values =
    Array.of_list (value g p.start :: List.map (fun (_, v) -> value g v) p.steps)
  in
  let labels = Array.of_list (List.map fst p.steps) in
  Data_path.make ~values ~labels

let connects g w =
  let m = Data_path.length w in
  (* Frontier: set of (source, current) pairs consistent with the prefix. *)
  let start =
    List.filter_map
      (fun u ->
        if Data_value.equal (value g u) (Data_path.value_at w 0) then Some (u, u)
        else None)
      (nodes g)
  in
  let step frontier i =
    let a = Data_path.label_at w i in
    let d = Data_path.value_at w (i + 1) in
    List.concat_map
      (fun (src, u) ->
        List.filter_map
          (fun v ->
            if Data_value.equal (value g v) d then Some (src, v) else None)
          (succ g u a))
      frontier
    |> List.sort_uniq compare
  in
  let rec go frontier i =
    if i >= m then frontier else go (step frontier i) (i + 1)
  in
  go start 0

let connects_pair g w u v = List.mem (u, v) (connects g w)

let map_values f g =
  build
    ~values:(Array.map f g.values)
    ~edges:(List.map (fun (u, a, v) -> (u, g.labels.(a), v)) g.edge_list)
  |> fun g' ->
  Array.blit g.names 0 g'.names 0 (Array.length g.names);
  Hashtbl.reset g'.name_index;
  Array.iteri (fun i s -> Hashtbl.add g'.name_index s i) g'.names;
  g'

let constant_values g =
  let d = if delta g = 0 then Data_value.of_int 0 else g.domain.(0) in
  map_values (fun _ -> d) g

let disjoint_union g1 g2 =
  let n1 = size g1 in
  let embed v = n1 + v in
  let values = Array.append g1.values g2.values in
  let edges1 = List.map (fun (u, a, v) -> (u, g1.labels.(a), v)) g1.edge_list in
  let edges2 =
    List.map (fun (u, a, v) -> (embed u, g2.labels.(a), embed v)) g2.edge_list
  in
  let g = build ~values ~edges:(edges1 @ edges2) in
  (* Preserve names, disambiguating collisions from g2 with primes. *)
  let taken = Hashtbl.create 16 in
  let claim s =
    let rec go s = if Hashtbl.mem taken s then go (s ^ "'") else s in
    let s = go s in
    Hashtbl.add taken s ();
    s
  in
  Array.iteri (fun i s -> g.names.(i) <- claim s) g1.names;
  Array.iteri (fun i s -> g.names.(n1 + i) <- claim s) g2.names;
  Hashtbl.reset g.name_index;
  Array.iteri (fun i s -> Hashtbl.add g.name_index s i) g.names;
  (g, embed)

let reachable g u =
  let m = reachability_matrix g in
  Array.init (size g) (fun v -> Bitmatrix.get m u v)

let pp ppf g =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun v ->
      Format.fprintf ppf "node %s = %a@," (name g v) Data_value.pp (value g v))
    (nodes g);
  List.iter
    (fun (u, a, v) ->
      Format.fprintf ppf "edge %s -%s-> %s@," (name g u) a (name g v))
    (edges g);
  Format.fprintf ppf "@]"
