(** Data graphs (Definition 1): finite directed graphs with edges labeled by
    letters of a finite alphabet [Σ] and nodes labeled by data values from a
    countably infinite domain [D].

    Nodes are dense integer indices [0 .. size g - 1]; every node also
    carries a human-readable name.  Edge labels are interned: algorithms can
    work with the dense label indices [0 .. label_count g - 1] and translate
    back with {!label_name}. *)

type node = int
type label = string

type t

(** {1 Construction} *)

val make :
  nodes:(string * Data_value.t) list ->
  edges:(string * label * string) list ->
  t
(** [make ~nodes ~edges] builds a data graph from named nodes.  Node indices
    are assigned in list order.
    @raise Invalid_argument on duplicate node names, dangling edge endpoints
    or duplicate edges. *)

val build :
  values:Data_value.t array -> edges:(node * label * node) list -> t
(** Index-based constructor; node [i] is named ["v<i>"]. *)

(** {1 Basic accessors} *)

val size : t -> int
(** Number of nodes [n]. *)

val uid : t -> int
(** Unique per constructed graph.  Graphs are immutable, so derived
    structures (CSPs, matrices) keyed by [uid] never need invalidation —
    this backs the per-graph caches in [Hom] and friends. *)

val nodes : t -> node list
(** [0; 1; ...; size g - 1]. *)

val value : t -> node -> Data_value.t
(** The data value [ρ(v)] of a node. *)

val same_value : t -> node -> node -> bool
(** [same_value g u v] iff [ρ(u) = ρ(v)] — the node partition of the title. *)

val name : t -> node -> string
val node_of_name : t -> string -> node
(** @raise Not_found if no node has this name. *)

val domain : t -> Data_value.t list
(** The distinct data values [D_G] used in the graph, sorted. *)

val delta : t -> int
(** [δ], the number of distinct data values ([List.length (domain g)]). *)

val value_index : t -> node -> int
(** Index of [ρ(v)] within [domain g]: a dense id in [0 .. delta g - 1]. *)

val nodes_with_value : t -> Data_value.t -> node list

(** {1 Alphabet and edges} *)

val alphabet : t -> label list
(** Distinct edge labels in interning order. *)

val label_count : t -> int

val label_id : t -> label -> int
(** @raise Not_found if the label does not occur in the graph. *)

val label_id_opt : t -> label -> int option
val label_name : t -> int -> label

val edges : t -> (node * label * node) list
(** Edges in input order with resolved label names; precomputed at build
    time, O(1). *)

val edge_count : t -> int
(** O(1): stored at build time. *)

val mem_edge : t -> node -> label -> node -> bool
(** O(1): one bit probe of the cached adjacency matrix.  Out-of-range
    endpoints and unknown labels answer [false]. *)

val succ : t -> node -> label -> node list
(** [succ g u a] lists all [v] with an [a]-labeled edge [u -> v].  A label
    absent from the graph yields []. *)

val succ_id : t -> node -> int -> node list
(** Like {!succ} with a dense label id. *)

val succ_all : t -> node -> (int * node) list
(** All outgoing edges of a node as (label id, target) pairs. *)

val pred_id : t -> node -> int -> node list
(** Sources of [a]-labeled edges into a node, by dense label id. *)

(** {1 Paths} *)

type path = { start : node; steps : (label * node) list }
(** A path [v1 a1 v2 a2 ... vm] (paper, Section 2). *)

val is_path : t -> path -> bool
(** Are all steps edges of the graph? *)

val path_end : path -> node

val data_path_of : t -> path -> Data_path.t
(** The data path [w_ξ] of a path [ξ]: replace every node by its data value.
    @raise Invalid_argument if [ξ] is not a path of [g]. *)

val connects : t -> Data_path.t -> (node * node) list
(** [connects g w] lists all pairs [(u, v)] such that [u -w-> v], i.e. some
    path of [g] from [u] to [v] has data path exactly [w]. *)

val connects_pair : t -> Data_path.t -> node -> node -> bool

(** {1 Transformations} *)

val map_values : (Data_value.t -> Data_value.t) -> t -> t
(** Relabel every node's data value (e.g. [G_π] for a renaming [π]). *)

val constant_values : t -> t
(** All nodes relabeled with one shared data value — the Theorem 32
    embedding of plain graphs into data graphs. *)

val disjoint_union : t -> t -> t * (node -> node)
(** [disjoint_union g1 g2] returns the union graph and the embedding of
    [g2]'s nodes into it ([g1]'s nodes keep their indices).  Node names of
    [g2] are suffixed with ["'"] where needed to stay unique. *)

val reachable : t -> node -> bool array
(** Nodes reachable from a node by a (possibly empty) path, any labels.
    A row of {!reachability_matrix}, decoded. *)

(** {1 Incremental edits}

    Each edit returns a {e new} graph (fresh {!uid}) sharing all
    unchanged structure with its parent.  The parent's packed matrices
    are inherited and patched instead of rebuilt: an edge insertion
    copies one per-label matrix and updates the reachability closure
    with one row sweep ([R'(x,y) = R(x,y) or (R(x,u) and R(v,y))]); a
    deletion patches the adjacency and recomputes the closure from it;
    a node addition resizes the matrices, so its caches restart empty
    and rebuild lazily.  Derived caches keyed by {!uid} (Hom CSPs, REM
    memos) miss on the new graph by construction — no invalidation
    hooks needed. *)

val add_edge : t -> node -> label -> node -> t
(** [add_edge g u a v] adds the edge [u -a-> v]; a label not yet in the
    alphabet is interned at the end.
    @raise Invalid_argument on out-of-range endpoints or if the edge is
    already present. *)

val remove_edge : t -> node -> label -> node -> t
(** [remove_edge g u a v] removes the edge [u -a-> v].  The label stays
    interned even if no edge uses it anymore (label ids never shift).
    @raise Invalid_argument if the edge is not present. *)

val add_node : t -> string -> Data_value.t -> t
(** [add_node g name d] appends an isolated node with the given name and
    data value; its index is [size g].
    @raise Invalid_argument on a duplicate node name. *)

val audit_edits : bool ref
(** When true, every edit cross-checks its patched matrices against a
    scratch rebuild and raises [Failure] on any divergence.  Off by
    default (it costs a full rebuild per edit); the test suite enables
    it. *)

(** {1 Packed adjacency and reachability}

    A graph is immutable once constructed, so both caches below are
    built lazily on first use and shared by every subsequent call.
    Callers must treat the returned matrices as read-only. *)

val adjacency_matrix : t -> int -> Util.Bitmatrix.t
(** [adjacency_matrix g a]: the n×n bit-matrix of the [a]-labeled edges,
    by dense label id.  Row [u] is the successor set of [u]. *)

val reachability_matrix : t -> Util.Bitmatrix.t
(** The reflexive-transitive closure of the edge relation (any label):
    bit [(u, v)] iff some (possibly empty) path leads from [u] to [v].
    Built once per graph — the per-call DFS sweeps this replaces were
    the dominant cost of [Hom.is_hom] and [Hom.build_csp]. *)

val pp : Format.formatter -> t -> unit
